"""The differential oracles and metamorphic properties.

Each **oracle family** bundles three functions under a name:

* ``generate(rng, max_size)`` — draw one JSON case from the seeded
  generators;
* ``run(case)`` — build the live inputs, execute the paired
  implementations (or the base/mutant pair for metamorphic properties),
  and return an :class:`OracleResult`;
* ``shrink_candidates(case)`` — propose structurally smaller variants
  for the greedy shrinker.

Differential families (the default campaign):

* ``cache`` — query-cache **on vs off** (plus a second cache-served
  pass) must agree search for search;
* ``pools`` — **serial vs thread vs process** batch execution must
  agree search for search;
* ``vm`` — the **dispatch-table VM vs the straight-line reference**
  evaluator must agree on exit code, stdout, instruction count and the
  entire final kernel state;
* ``compiled`` — the **closure-compiled VM core vs the dispatch loop**
  (the two production execution strategies) must agree on the same four
  sides, including exact error messages and budget-exhaustion points;
* ``ledger`` — a run ledger **written, read back and diffed against
  itself** must be clean;
* ``profile`` — the **privilege profile extracted from the live run vs
  from its captured ledger** must agree bit for bit (the corpus sweep's
  cache stores ledger-shaped profiles; a skew here silently poisons
  every peer-group comparison).

Metamorphic families (opt-in via ``--oracle``; slower, run whole
pipelines or searches per case):

* ``priv-remove`` — inserting ``priv_remove`` of a *dead* (not
  permitted) privilege never flips any attack's vulnerability and never
  grows any exposure window beyond the inserted instructions;
* ``monotone`` — removing a capability from the attacker's granted set
  never turns an invulnerable configuration vulnerable;
* ``rule-order`` — permuting the rule list preserves the reachable
  state set whenever the search exhausts within budget.

Comparisons use :func:`report_fingerprint`, which deliberately excludes
``elapsed`` (wall-clock), ``from_cache`` (provenance, not answer) and
``compromised_state`` (process-pool workers return the picklable essence
without the witness configuration; its absence is documented behaviour,
not a disagreement).
"""

from __future__ import annotations

import dataclasses
import random
import tempfile
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.testkit import generators, shrink

Case = Dict[str, Any]


@dataclasses.dataclass
class OracleResult:
    """One oracle invocation's outcome."""

    family: str
    ok: bool
    #: True when the property did not apply (e.g. the search timed out,
    #: so reachable sets are incomparable).  Skips are not failures.
    skipped: bool = False
    details: str = ""

    @property
    def failed(self) -> bool:
        return not self.ok and not self.skipped


@dataclasses.dataclass(frozen=True)
class OracleFamily:
    name: str
    description: str
    generate: Callable[[random.Random, int], Case]
    run: Callable[[Case], OracleResult]
    shrink_candidates: Callable[[Case], Iterable[Case]]


_REGISTRY: Dict[str, OracleFamily] = {}


def _register(family: OracleFamily) -> OracleFamily:
    _REGISTRY[family.name] = family
    return family


def family(name: str) -> OracleFamily:
    """Look up an oracle family by name."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown oracle family {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[name]


def report_fingerprint(report) -> Tuple:
    """The comparable essence of one :class:`RosaReport`."""
    return (
        report.verdict.value,
        tuple(report.witness),
        report.states_explored,
        report.states_seen,
        report.stats.peak_frontier,
        report.stats.dedup_hits,
        report.stats.max_depth,
    )


def _mismatch(family_name: str, label_a: str, a, label_b: str, b) -> OracleResult:
    return OracleResult(
        family=family_name,
        ok=False,
        details=f"{label_a} != {label_b}:\n  {label_a}: {a!r}\n  {label_b}: {b!r}",
    )


# -- cache: on vs off ---------------------------------------------------------


def _run_cache(case: Case) -> OracleResult:
    from repro.rosa.engine import ParallelPolicy, QueryCache, QueryEngine

    serial = ParallelPolicy(mode="serial")
    off = QueryEngine(cache=None, parallel=serial)
    on = QueryEngine(cache=QueryCache(), parallel=serial)

    reports_off = off.run_queries(generators.build_batch_requests(case))
    first = on.run_queries(generators.build_batch_requests(case))
    served = on.run_queries(generators.build_batch_requests(case))
    if on.cache.hits == 0:
        return OracleResult(
            "cache", ok=False, details="second pass produced no cache hits"
        )
    for index, (a, b, c) in enumerate(zip(reports_off, first, served)):
        fa, fb, fc = (report_fingerprint(r) for r in (a, b, c))
        if fa != fb:
            return _mismatch("cache", f"off[{index}]", fa, f"on-first[{index}]", fb)
        if fa != fc:
            return _mismatch("cache", f"off[{index}]", fa, f"on-cached[{index}]", fc)
    return OracleResult("cache", ok=True)


def _shrink_batch(case: Case) -> Iterable[Case]:
    yield from shrink.shrunk_lists(case, "queries")
    for index, query_case in enumerate(case.get("queries", [])):
        for key in ("caps", "surface"):
            for variant_query in shrink.shrunk_lists(query_case, key):
                variant = dict(case)
                queries = list(case["queries"])
                queries[index] = variant_query
                variant["queries"] = queries
                yield variant


_register(
    OracleFamily(
        name="cache",
        description="query cache on vs off (plus a cache-served pass)",
        generate=generators.gen_batch_case,
        run=_run_cache,
        shrink_candidates=_shrink_batch,
    )
)


# -- pools: serial vs thread vs process ---------------------------------------


def _run_pools(case: Case) -> OracleResult:
    from repro.rosa.engine import ParallelPolicy, QueryEngine

    sides = {}
    for mode in ("serial", "thread", "process"):
        engine = QueryEngine(cache=None, parallel=ParallelPolicy(mode=mode))
        reports = engine.run_queries(generators.build_batch_requests(case))
        sides[mode] = [report_fingerprint(report) for report in reports]
    for mode in ("thread", "process"):
        for index, (a, b) in enumerate(zip(sides["serial"], sides[mode])):
            if a != b:
                return _mismatch(
                    "pools", f"serial[{index}]", a, f"{mode}[{index}]", b
                )
    return OracleResult("pools", ok=True)


_register(
    OracleFamily(
        name="pools",
        description="serial vs thread vs process batch execution",
        generate=generators.gen_batch_case,
        run=_run_pools,
        shrink_candidates=_shrink_batch,
    )
)


# -- vm: dispatch table vs straight-line reference ----------------------------


def _fs_listing(fs) -> Tuple:
    def walk(ino: int, path: str, acc: List) -> None:
        node = fs.inode(ino)
        acc.append((path or "/", node.kind, node.owner, node.group, node.mode,
                    node.content))
        if node.entries:
            for name in sorted(node.entries):
                walk(node.entries[name], f"{path}/{name}", acc)

    listing: List = []
    walk(fs.root_ino, "", listing)
    return tuple(listing)


def kernel_fingerprint(kernel) -> Tuple:
    """The comparable essence of one simulated machine's final state."""
    processes = tuple(
        (
            pid,
            proc.state,
            (proc.creds.ruid, proc.creds.euid, proc.creds.suid),
            (proc.creds.rgid, proc.creds.egid, proc.creds.sgid),
            tuple(sorted(proc.creds.supplementary)),
            proc.caps.effective.describe(),
            proc.caps.permitted.describe(),
            tuple(sorted(proc.fds)),
            proc.exit_signal,
        )
        for pid, proc in sorted(kernel.processes.items())
    )
    return (
        processes,
        tuple(sorted(kernel.bound_ports.items())),
        tuple(kernel.devmem_reads),
        tuple(kernel.devmem_writes),
        _fs_listing(kernel.fs),
    )


def _execute_program(case: Case, interpreter_cls) -> Tuple:
    from repro.caps import CapabilitySet
    from repro.frontend import compile_source
    from repro.oskernel.setup import build_kernel
    from repro.vm.interpreter import VMError

    module = compile_source(generators.render_program(case), "fuzzcase")
    kernel = build_kernel()
    process = kernel.spawn(
        int(case["uid"]), int(case["gid"]),
        permitted=CapabilitySet(case["permitted"]),
    )
    vm = interpreter_cls(module, kernel, process)
    try:
        exit_code: Any = vm.run()
    except VMError as error:
        exit_code = ("vmerror", str(error))
    return (
        exit_code,
        tuple(vm.stdout),
        vm.executed_instructions,
        kernel_fingerprint(kernel),
    )


_VM_SIDE_LABELS = ("exit", "stdout", "instructions", "kernel")


def _run_vm(case: Case) -> OracleResult:
    from repro.testkit.reference import ReferenceInterpreter
    from repro.vm.interpreter import Interpreter

    production = _execute_program(case, Interpreter)
    reference = _execute_program(case, ReferenceInterpreter)
    for label, a, b in zip(_VM_SIDE_LABELS, production, reference):
        if a != b:
            return _mismatch("vm", f"vm.{label}", a, f"reference.{label}", b)
    return OracleResult("vm", ok=True)


def _flatten_compounds(body: List) -> Iterable[List]:
    """Variants replacing one if/loop with its (flattened) sub-statements."""
    for index, stmt in enumerate(body):
        if stmt[0] == "loop":
            yield body[:index] + list(stmt[2]) + body[index + 1 :]
        elif stmt[0] == "if":
            yield body[:index] + list(stmt[2]) + list(stmt[3]) + body[index + 1 :]


def _shrink_program(case: Case) -> Iterable[Case]:
    body = case.get("body", [])
    for smaller in shrink.drop_chunks(list(body)):
        variant = dict(case)
        variant["body"] = smaller
        yield variant
    for flattened in _flatten_compounds(list(body)):
        variant = dict(case)
        variant["body"] = flattened
        yield variant
    yield from shrink.shrunk_lists(case, "permitted")


_register(
    OracleFamily(
        name="vm",
        description="dispatch-table VM vs straight-line reference evaluator",
        generate=generators.gen_program_case,
        run=_run_vm,
        shrink_candidates=_shrink_program,
    )
)


# -- compiled: closure-compiled core vs dispatch loop -------------------------


def _run_compiled(case: Case) -> OracleResult:
    from repro.vm.interpreter import DispatchInterpreter, Interpreter

    compiled = _execute_program(case, Interpreter)
    dispatch = _execute_program(case, DispatchInterpreter)
    for label, a, b in zip(_VM_SIDE_LABELS, compiled, dispatch):
        if a != b:
            return _mismatch("compiled", f"compiled.{label}", a, f"dispatch.{label}", b)
    return OracleResult("compiled", ok=True)


_register(
    OracleFamily(
        name="compiled",
        description="closure-compiled VM core vs per-instruction dispatch loop",
        generate=generators.gen_program_case,
        run=_run_compiled,
        shrink_candidates=_shrink_program,
    )
)


# -- ledger: write -> read -> self-diff ---------------------------------------


def _run_ledger(case: Case) -> OracleResult:
    from repro.core.ledger import RunLedger, capture_rosa, diff_ledgers
    from repro.rosa.engine import QueryEngine
    from repro.telemetry import Telemetry

    request = generators.build_query_request(case)
    telemetry = Telemetry.enabled(audit=True)
    engine = QueryEngine(cache=None, telemetry=telemetry)
    report = engine.check(request.query, request.budget)
    with tempfile.TemporaryDirectory(prefix="fuzz-ledger-") as root:
        first = capture_rosa(f"{root}/a", report, telemetry, timestamp=0.0)
        capture_rosa(f"{root}/b", report, telemetry, timestamp=0.0)
        second = RunLedger.load(f"{root}/b")
        diff = diff_ledgers(first, second)
        if not diff.clean:
            return OracleResult(
                "ledger", ok=False,
                details="self-diff not clean:\n" + diff.render(),
            )
        if first.manifest != second.manifest:
            return _mismatch(
                "ledger", "manifest-a", first.manifest, "manifest-b", second.manifest
            )
    return OracleResult("ledger", ok=True)


def _shrink_query(case: Case) -> Iterable[Case]:
    for key in ("caps", "surface"):
        yield from shrink.shrunk_lists(case, key)
    if case.get("repeat", 1) != 1:
        variant = dict(case)
        variant["repeat"] = 1
        yield variant


_register(
    OracleFamily(
        name="ledger",
        description="run ledger write -> read -> self-diff must be clean",
        generate=generators.gen_query_case,
        run=_run_ledger,
        shrink_candidates=_shrink_query,
    )
)


# -- profile: live extraction == ledger extraction ----------------------------


def _gen_profile_case(rng: random.Random, max_size: int = 20) -> Case:
    # Family-conditioned programs exercise realistic privilege shapes
    # (brackets, credential flips, multi-phase daemons) — exactly the
    # structures the profile extractor condenses.
    return generators.gen_corpus_program_case(rng, max_size)


def _run_profile(case: Case) -> OracleResult:
    from repro.core.ledger import capture_analysis
    from repro.core.pipeline import PrivAnalyzer
    from repro.corpus.profile import profile_from_analysis, profile_from_ledger
    from repro.rewriting import SearchBudget
    from repro.telemetry import Telemetry

    telemetry = Telemetry.enabled(audit=True)
    analyzer = PrivAnalyzer(
        budget=SearchBudget(max_states=20_000, max_seconds=10.0),
        telemetry=telemetry,
    )
    analysis = analyzer.analyze(
        generators.build_program_spec(case, name="fuzz-profile")
    )
    live = profile_from_analysis(analysis, audit=telemetry.audit).to_dict()
    with tempfile.TemporaryDirectory(prefix="fuzz-profile-") as root:
        # capture_analysis returns the ledger *re-loaded from disk*, so
        # the comparison crosses the full write -> parse round trip.
        ledger = capture_analysis(root, analysis, telemetry, timestamp=0.0)
        persisted = profile_from_ledger(ledger).to_dict()
    if live != persisted:
        for key in sorted(set(live) | set(persisted)):
            if live.get(key) != persisted.get(key):
                return _mismatch(
                    "profile",
                    f"live.{key}", live.get(key),
                    f"ledger.{key}", persisted.get(key),
                )
    return OracleResult("profile", ok=True)


_register(
    OracleFamily(
        name="profile",
        description="privilege profile from the live run == from its ledger",
        generate=_gen_profile_case,
        run=_run_profile,
        shrink_candidates=_shrink_program,
    )
)


# -- store: live search == shared-store-served across engines -----------------


def _run_store(case: Case) -> OracleResult:
    """Three sides: no store, store-cold (publishes), store-warm served.

    The served side is a *different* engine with an empty in-memory LRU
    and a fresh store handle over the same directory — exactly a second
    client or a server restart.  Besides bit-identical fingerprints, the
    family asserts the store actually served (nonzero hits, zero
    rejections): a fail-closed path that silently rejected everything
    would be correct but useless, and that is a bug too.
    """
    from repro.rosa.engine import ParallelPolicy, QueryCache, QueryEngine
    from repro.rosa.store import SharedVerdictStore

    serial = ParallelPolicy(mode="serial")
    live = QueryEngine(cache=None, parallel=serial)
    reports_live = live.run_queries(generators.build_batch_requests(case))
    with tempfile.TemporaryDirectory(prefix="fuzz-store-") as root:
        first = QueryEngine(
            cache=QueryCache(), parallel=serial, store=SharedVerdictStore(root)
        )
        reports_first = first.run_queries(generators.build_batch_requests(case))
        warm_store = SharedVerdictStore(root)
        warm = QueryEngine(cache=QueryCache(), parallel=serial, store=warm_store)
        reports_warm = warm.run_queries(generators.build_batch_requests(case))
        if warm_store.hits == 0:
            return OracleResult(
                "store", ok=False,
                details=(
                    "warm engine produced no store hits "
                    f"(misses={warm_store.misses}, "
                    f"rejected={warm_store.rejected})"
                ),
            )
        if warm_store.rejected:
            return OracleResult(
                "store", ok=False,
                details=f"{warm_store.rejected} published entr(y/ies) "
                "failed attestation on re-read",
            )
    for index, (a, b, c) in enumerate(
        zip(reports_live, reports_first, reports_warm)
    ):
        fa, fb, fc = (report_fingerprint(r) for r in (a, b, c))
        if fa != fb:
            return _mismatch("store", f"live[{index}]", fa, f"cold[{index}]", fb)
        if fa != fc:
            return _mismatch("store", f"live[{index}]", fa, f"served[{index}]", fc)
    return OracleResult("store", ok=True)


_register(
    OracleFamily(
        name="store",
        description="shared verdict store: cold publish == warm serve == live",
        generate=generators.gen_batch_case,
        run=_run_store,
        shrink_candidates=_shrink_batch,
    )
)


# -- priv-remove: dead-privilege insertion is inert ---------------------------


def _analyze_case(case: Case, name: str):
    from repro.core.pipeline import PrivAnalyzer
    from repro.rewriting import SearchBudget

    analyzer = PrivAnalyzer(budget=SearchBudget(max_states=20_000, max_seconds=10.0))
    return analyzer.analyze(generators.build_program_spec(case, name=name))


def _vulnerable_instructions(analysis, attack_id: int) -> int:
    return sum(
        phase.phase.instruction_count
        for phase in analysis.phases
        if phase.vulnerable_to(attack_id)
    )


def _run_priv_remove(case: Case) -> OracleResult:
    from repro.core.attacks import ALL_ATTACKS

    dead = [
        cap for cap in generators.CAP_POOL if cap not in case.get("permitted", [])
    ]
    if not dead:
        return OracleResult("priv-remove", ok=True, skipped=True,
                            details="no dead capability available")
    mutant = dict(case)
    mutant["body"] = [["priv", "remove", dead[0]]] + list(case.get("body", []))

    base = _analyze_case(case, "fuzz-base")
    variant = _analyze_case(mutant, "fuzz-mutant")
    delta = variant.chrono.total - base.chrono.total
    if delta < 0:
        return _mismatch(
            "priv-remove", "base.total", base.chrono.total,
            "mutant.total", variant.chrono.total,
        )
    for attack in ALL_ATTACKS:
        before = _vulnerable_instructions(base, attack.attack_id)
        after = _vulnerable_instructions(variant, attack.attack_id)
        if (before > 0) != (after > 0):
            return _mismatch(
                "priv-remove",
                f"attack{attack.attack_id}.vulnerable(base)", before > 0,
                f"attack{attack.attack_id}.vulnerable(mutant)", after > 0,
            )
        if after > before + delta:
            return _mismatch(
                "priv-remove",
                f"attack{attack.attack_id}.window(base)+delta", before + delta,
                f"attack{attack.attack_id}.window(mutant)", after,
            )
    return OracleResult("priv-remove", ok=True)


_register(
    OracleFamily(
        name="priv-remove",
        description="inserting priv_remove of a dead privilege is inert",
        generate=generators.gen_program_case,
        run=_run_priv_remove,
        shrink_candidates=_shrink_program,
    )
)


# -- monotone: fewer attacker privileges never increase exposure --------------


def _gen_monotone_case(rng: random.Random, max_size: int = 20) -> Case:
    case = generators.gen_query_case(rng, max_size)
    if not case["caps"]:
        # The property shrinks the granted set; an empty set would skip.
        case["caps"] = [rng.choice(generators.CAP_POOL)]
    return case


def _run_monotone(case: Case) -> OracleResult:
    from repro.rosa.query import Verdict, check

    if not case.get("caps"):
        return OracleResult("monotone", ok=True, skipped=True,
                            details="empty capability set has nothing to shrink")
    base_request = generators.build_query_request(case)
    base = check(base_request.query, base_request.budget)
    if base.verdict is Verdict.TIMEOUT:
        return OracleResult("monotone", ok=True, skipped=True,
                            details="base search exceeded budget")
    for removed in case["caps"]:
        smaller_case = dict(case)
        smaller_case["caps"] = [cap for cap in case["caps"] if cap != removed]
        request = generators.build_query_request(smaller_case)
        smaller = check(request.query, request.budget)
        if smaller.verdict is Verdict.TIMEOUT:
            continue
        if (
            smaller.verdict is Verdict.VULNERABLE
            and base.verdict is not Verdict.VULNERABLE
        ):
            return _mismatch(
                "monotone",
                f"verdict(without {removed})", smaller.verdict.value,
                "verdict(full set)", base.verdict.value,
            )
    return OracleResult("monotone", ok=True)


_register(
    OracleFamily(
        name="monotone",
        description="shrinking the granted capability set never adds exposure",
        generate=_gen_monotone_case,
        run=_run_monotone,
        shrink_candidates=_shrink_query,
    )
)


# -- rule-order: permuting rules preserves the reachable set ------------------


def _reachable_keys(system, initial, max_states: int) -> Optional[set]:
    """Exhaustive reachable-key collection; None when truncated.

    Only *exhausted* explorations are comparable: under a budget, two
    rule orders legitimately truncate at different frontiers.
    """
    seen = {initial.key}
    frontier = [initial]
    while frontier:
        config = frontier.pop()
        for _label, successor in system.successors(config):
            key = successor.key
            if key not in seen:
                if len(seen) >= max_states:
                    return None
                seen.add(key)
                frontier.append(successor)
    return seen


def _gen_rule_order_case(rng: random.Random, max_size: int = 20) -> Case:
    case = generators.gen_config_case(rng, max_size)
    case["perm_seed"] = rng.randrange(1 << 30)
    return case


def _run_rule_order(case: Case) -> OracleResult:
    from repro.rewriting import ObjectSystem
    from repro.rosa.rules import unix_rules

    initial = generators.build_configuration(case)
    max_states = int(case.get("max_states", 30_000))
    rules = list(unix_rules())
    base = _reachable_keys(ObjectSystem("UNIX", rules), initial, max_states)
    if base is None:
        return OracleResult("rule-order", ok=True, skipped=True,
                            details="exploration truncated by budget")
    permuted_rules = list(rules)
    random.Random(case.get("perm_seed", 0)).shuffle(permuted_rules)
    permuted = _reachable_keys(
        ObjectSystem("UNIX-permuted", permuted_rules), initial, max_states
    )
    if permuted is None:
        return OracleResult("rule-order", ok=True, skipped=True,
                            details="permuted exploration truncated by budget")
    if base != permuted:
        only_base = len(base - permuted)
        only_permuted = len(permuted - base)
        return OracleResult(
            "rule-order", ok=False,
            details=(
                f"reachable sets differ: {len(base)} vs {len(permuted)} states "
                f"({only_base} only in rule order A, {only_permuted} only in B)"
            ),
        )
    return OracleResult("rule-order", ok=True)


def _shrink_config(case: Case) -> Iterable[Case]:
    for key in ("messages", "files", "dirs", "users", "groups", "ports", "caps"):
        yield from shrink.shrunk_lists(case, key)


_register(
    OracleFamily(
        name="rule-order",
        description="rule permutation preserves the reachable state set",
        generate=_gen_rule_order_case,
        run=_run_rule_order,
        shrink_candidates=_shrink_config,
    )
)


# -- reduction-parity: reduced and raw searches agree -------------------------


def _run_reduction_parity(case: Case) -> OracleResult:
    from repro.rosa.query import Verdict, check

    request = generators.build_query_request(case)
    full = check(request.query, request.budget, reduction=False)
    reduced = check(request.query, request.budget, reduction=True)
    # Parity is guaranteed only when both searches complete: a reduced
    # search can EXHAUST a space the raw search would still be walking
    # when its budget runs out, so TIMEOUT on either side is a skip, not
    # a verdict flip.
    if full.verdict is Verdict.TIMEOUT or reduced.verdict is Verdict.TIMEOUT:
        return OracleResult(
            "reduction-parity", ok=True, skipped=True,
            details="a search exceeded its budget; verdicts incomparable",
        )
    if full.verdict is not reduced.verdict:
        return _mismatch(
            "reduction-parity",
            "verdict(raw)", full.verdict.value,
            "verdict(reduced)", reduced.verdict.value,
        )
    if bool(full.witness) != bool(reduced.witness):
        return _mismatch(
            "reduction-parity",
            "witness(raw)", full.witness,
            "witness(reduced)", reduced.witness,
        )
    # The state-count inequality holds only for exhaustive searches: a
    # VULNERABLE search stops at its first witness, and partial-order
    # reduction may defer the goal-reaching step behind a wide ample
    # fan-out, legitimately enqueueing more states first.
    if (
        full.verdict is Verdict.INVULNERABLE
        and reduced.states_seen > full.states_seen
    ):
        return _mismatch(
            "reduction-parity",
            "states_seen(raw)", full.states_seen,
            "states_seen(reduced)", reduced.states_seen,
        )
    return OracleResult("reduction-parity", ok=True)


_register(
    OracleFamily(
        name="reduction-parity",
        description="symmetry/partial-order reduction preserves verdicts "
        "and never explores more states",
        generate=generators.gen_query_case,
        run=_run_reduction_parity,
        shrink_candidates=_shrink_query,
    )
)


#: Family names, in registration order.
ALL_FAMILIES: Tuple[str, ...] = tuple(_REGISTRY)

#: The fast differential families ``privanalyzer fuzz`` runs by default;
#: the metamorphic properties run whole pipelines or reachability
#: explorations per case and are opt-in via ``--oracle``.
DEFAULT_FAMILIES: Tuple[str, ...] = (
    "cache",
    "pools",
    "vm",
    "compiled",
    "ledger",
    "reduction-parity",
    "profile",
    "store",
)
