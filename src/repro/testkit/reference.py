"""Independent reference implementations for the differential oracles.

The value of a differential oracle scales with how little the two sides
share.  :class:`ReferenceInterpreter` therefore re-implements the VM's
execution core from the IR semantics rather than reusing the production
code paths: a straight-line ``isinstance`` ladder instead of the
dispatch table, its own operand resolution, and inline arithmetic
(explicit two's-complement wrapping, C-style truncating division)
instead of the shared ``BINARY_OPS``/``ICMP_PREDICATES`` tables.  A bug
in either evaluation strategy — a stale dispatch entry, a wrong wrap, a
missed retire — shows up as a disagreement in exit code, stdout,
instruction count, or final kernel state.

Call-boundary behaviour (intrinsic dispatch, signal delivery, the call
depth cap, the instruction budget) intentionally reuses the base class:
those are *inputs* to the evaluation strategy under test, and sharing
them keeps disagreements attributable to instruction semantics.

The interpreter still subclasses :class:`~repro.vm.interpreter.Interpreter`
so ``spawn_wait`` children inherit it (``type(vm)``) and the whole
pipeline can run on it via
:func:`~repro.vm.interpreter.set_interpreter_class`.
"""

from __future__ import annotations

from repro.ir import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ConstantInt,
    ConstantString,
    FunctionRef,
    GlobalVariable,
    ICmp,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UndefValue,
)
from repro.vm.frame import Frame, StackSlot
from repro.vm.interpreter import Interpreter, VMError


def _wrap(bits: int, value: int) -> int:
    """Two's-complement wrap, written independently of ``IntType.wrap``."""
    value %= 1 << bits
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _trunc_div(a: int, b: int) -> int:
    """C-style truncating division (round toward zero)."""
    quotient, remainder = divmod(abs(a), abs(b))
    return -quotient if (a < 0) != (b < 0) else quotient


class ReferenceInterpreter(Interpreter):
    """The straight-line reference evaluator.

    Drop-in for :class:`Interpreter`; only the per-instruction execution
    strategy differs.
    """

    #: The whole point is the independent straight-line loop below; the
    #: compiled core must not route around it.
    use_compiled = False

    def _resolve(self, frame: Frame, value):
        # Literal kinds first — the opposite probe order from the
        # production fast path, so ordering bugs cannot hide in both.
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantString):
            return value.value
        if isinstance(value, FunctionRef):
            return value
        if isinstance(value, GlobalVariable):
            return self.globals[value]
        if isinstance(value, UndefValue):
            return 0
        if value in frame.values:
            return frame.values[value]
        raise VMError(
            f"@{frame.function.name}: use of undefined value {value.short()}"
        )

    def _run_frame(self, frame: Frame):
        resolve = self._resolve
        while True:
            block = frame.block
            if block is None:
                raise VMError(f"@{frame.function.name}: fell off function end")
            if frame.index >= len(block.instructions):
                raise VMError(
                    f"@{frame.function.name}:%{block.name}: block without terminator"
                )
            instruction = block.instructions[frame.index]
            self.executed_instructions += 1
            if self.executed_instructions > self.max_instructions:
                raise VMError("instruction budget exhausted (runaway program?)")

            if isinstance(instruction, BinOp):
                lhs = resolve(frame, instruction.operands[0])
                rhs = resolve(frame, instruction.operands[1])
                op = instruction.op
                if op == "add":
                    raw = lhs + rhs
                elif op == "sub":
                    raw = lhs - rhs
                elif op == "mul":
                    raw = lhs * rhs
                elif op == "sdiv":
                    if rhs == 0:
                        raise VMError("sdiv by zero")
                    raw = _trunc_div(lhs, rhs)
                elif op == "srem":
                    if rhs == 0:
                        raise VMError("srem by zero")
                    raw = lhs - _trunc_div(lhs, rhs) * rhs
                elif op == "and":
                    raw = lhs & rhs
                elif op == "or":
                    raw = lhs | rhs
                elif op == "xor":
                    raw = lhs ^ rhs
                elif op == "shl":
                    raw = lhs << rhs
                elif op == "lshr":
                    raw = (lhs % (1 << 64)) >> rhs
                else:  # pragma: no cover - the op set is closed
                    raise VMError(f"unknown binary op {op}")
                frame.values[instruction] = _wrap(instruction.type.bits, raw)
                frame.index += 1
            elif isinstance(instruction, ICmp):
                lhs = resolve(frame, instruction.operands[0])
                rhs = resolve(frame, instruction.operands[1])
                predicate = instruction.predicate
                if predicate == "eq":
                    flag = lhs == rhs
                elif predicate == "ne":
                    flag = lhs != rhs
                elif predicate == "slt":
                    flag = lhs < rhs
                elif predicate == "sle":
                    flag = lhs <= rhs
                elif predicate == "sgt":
                    flag = lhs > rhs
                elif predicate == "sge":
                    flag = lhs >= rhs
                else:  # pragma: no cover - the predicate set is closed
                    raise VMError(f"unknown icmp predicate {predicate}")
                frame.values[instruction] = 1 if flag else 0
                frame.index += 1
            elif isinstance(instruction, Load):
                slot = resolve(frame, instruction.pointer)
                if not isinstance(slot, StackSlot):
                    raise VMError(f"load through non-pointer {slot!r}")
                frame.values[instruction] = 0 if slot.value is None else slot.value
                frame.index += 1
            elif isinstance(instruction, Store):
                slot = resolve(frame, instruction.pointer)
                if not isinstance(slot, StackSlot):
                    raise VMError(f"store through non-pointer {slot!r}")
                slot.value = resolve(frame, instruction.value)
                frame.index += 1
            elif isinstance(instruction, Alloca):
                frame.values[instruction] = StackSlot(instruction.name)
                frame.index += 1
            elif isinstance(instruction, Call):
                callee = instruction.callee
                if not isinstance(callee, FunctionRef):
                    callee = resolve(frame, callee)
                    if not isinstance(callee, FunctionRef):
                        raise VMError(
                            f"indirect call through non-function {callee!r}"
                        )
                args = [resolve(frame, arg) for arg in instruction.args]
                frame.values[instruction] = self.call_function(callee.function, args)
                self._dispatch_pending_signals()
                frame.index += 1
            elif isinstance(instruction, Branch):
                taken = (
                    instruction.if_true
                    if resolve(frame, instruction.operands[0])
                    else instruction.if_false
                )
                frame.prev_block = block
                frame.block = taken
                frame.index = 0
            elif isinstance(instruction, Jump):
                frame.prev_block = block
                frame.block = instruction.target
                frame.index = 0
            elif isinstance(instruction, Phi):
                incoming = instruction.incoming.get(frame.prev_block)
                if incoming is None:
                    raise VMError(
                        f"phi has no incoming for predecessor "
                        f"%{frame.prev_block.name if frame.prev_block else '?'}"
                    )
                frame.values[instruction] = resolve(frame, incoming)
                frame.index += 1
            elif isinstance(instruction, Select):
                cond = resolve(frame, instruction.operands[0])
                frame.values[instruction] = resolve(
                    frame, instruction.operands[1] if cond else instruction.operands[2]
                )
                frame.index += 1
            elif isinstance(instruction, Ret):
                if instruction.value is not None:
                    return resolve(frame, instruction.value)
                return None
            else:
                raise VMError(
                    f"@{frame.function.name}:%{block.name}: "
                    f"reached {instruction.opcode}"
                )
