"""The greedy case shrinker.

Classic delta-debugging, specialised to the testkit's JSON cases: each
oracle family exposes a ``shrink_candidates(case)`` function proposing
strictly-smaller variants of a failing case (drop a statement, drop a
query, empty a capability set…), and :func:`greedy_shrink` repeatedly
takes the first variant that still fails until no proposal does.

The shrinker is deliberately simple — first-fit greedy, no backtracking
— because generated cases are small (tens of nodes) and the oracles are
the expensive part.  ``max_attempts`` bounds total oracle invocations so
a pathological case cannot stall a campaign.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, Tuple


def case_size(case: Any) -> int:
    """A structural size measure: total nodes in the JSON tree.

    Only used to order candidates and to report shrink progress; any
    monotone measure works.
    """
    if isinstance(case, dict):
        return 1 + sum(case_size(value) for value in case.values())
    if isinstance(case, (list, tuple)):
        return 1 + sum(case_size(value) for value in case)
    return 1


def greedy_shrink(
    case: Dict[str, Any],
    still_fails: Callable[[Dict[str, Any]], bool],
    candidates: Callable[[Dict[str, Any]], Iterable[Dict[str, Any]]],
    max_attempts: int = 400,
) -> Tuple[Dict[str, Any], int]:
    """Shrink ``case`` while ``still_fails`` holds.

    ``candidates`` proposes smaller variants (need not guarantee they
    fail); ``still_fails`` re-runs the oracle.  Returns the smallest
    failing case found and the number of oracle invocations spent.
    Oracle exceptions count as "still fails": a candidate that crashes
    the oracle outright reproduces the problem too.
    """
    current = copy.deepcopy(case)
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        proposals = sorted(candidates(current), key=case_size)
        for proposal in proposals:
            if attempts >= max_attempts:
                break
            if case_size(proposal) >= case_size(current):
                continue
            attempts += 1
            try:
                failing = still_fails(proposal)
            except Exception:
                failing = True
            if failing:
                current = copy.deepcopy(proposal)
                improved = True
                break
    return current, attempts


# -- generic candidate builders ------------------------------------------------


def drop_one(items: list) -> Iterable[list]:
    """Every list obtained by removing one element (longest-prefix first)."""
    for index in reversed(range(len(items))):
        yield items[:index] + items[index + 1 :]


def drop_chunks(items: list) -> Iterable[list]:
    """Halves first (fast progress on big lists), then single drops."""
    length = len(items)
    if length > 3:
        half = length // 2
        yield items[:half]
        yield items[half:]
    yield from drop_one(items)


def shrunk_lists(case: Dict[str, Any], key: str) -> Iterable[Dict[str, Any]]:
    """Variants of ``case`` with ``case[key]`` shrunk one step."""
    items = case.get(key) or []
    if not isinstance(items, list) or not items:
        return
    for smaller in drop_chunks(items):
        variant = copy.deepcopy(case)
        variant[key] = copy.deepcopy(smaller)
        yield variant
