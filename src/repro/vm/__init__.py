"""The IR interpreter: deterministic execution on the simulated kernel.

Stands in for native execution of the paper's instrumented binaries;
provides exact per-instruction accounting and the intrinsic surface
(syscall wrappers, the AutoPriv ``priv_*`` runtime, libc-ish helpers).
"""

from repro.vm.frame import Frame, GlobalSlot, StackSlot
from repro.vm.interpreter import (
    DispatchInterpreter,
    Interpreter,
    ProgramExit,
    VMError,
    interpreter_class,
    set_interpreter_class,
)
from repro.vm.intrinsics import default_intrinsics
from repro.vm.profiler import ProfilingInterpreter

__all__ = [
    "DispatchInterpreter",
    "Frame",
    "GlobalSlot",
    "Interpreter",
    "ProfilingInterpreter",
    "ProgramExit",
    "StackSlot",
    "VMError",
    "default_intrinsics",
    "interpreter_class",
    "set_interpreter_class",
]
