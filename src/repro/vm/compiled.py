"""The compiled VM core: per-function closure compilation.

:func:`compile_function` translates one defined IR function into a
:class:`CompiledFunction`: SSA values become integer slots in a flat
register list, and every instruction becomes a specialized closure with
its operands resolved at compile time — no per-step ``isinstance``
ladder, no dispatch-table lookup, no frame-dictionary probes.  The
stock :class:`~repro.vm.interpreter.Interpreter` routes defined-function
calls here (``use_compiled``); subclasses that override ``_run_frame``
(the profiling and testkit reference interpreters) opt out and keep
their per-instruction strategies.

Parity is the design constraint, not an afterthought:

* ``executed_instructions`` matches the dispatch interpreter exactly,
  including on every error path.  Each basic block's count is added
  *before* the block runs; closures that can terminate early (division,
  bad pointers, calls that unwind) carry their baked ``tail`` — the
  number of pre-counted instructions that will now never retire — and
  subtract it before re-raising, so the counter always reads as if
  instructions were retired one at a time.
* When a block would cross the instruction budget, the pre-add is
  rolled back and the block re-runs through a per-instruction slow path
  that raises at exactly the instruction the dispatch loop would.
  A call that leaves the counter at the budget edge re-checks before
  letting pre-counted successors run (the dispatch loop would raise on
  the instruction after the call).
* Error messages are byte-identical to the dispatch handlers' — the
  differential oracles fingerprint them.
* ϕ-nodes compile to per-edge move lists (classic SSA destruction),
  applied in instruction order so a ϕ reading an earlier ϕ of the same
  block observes the new value, exactly like the sequential dispatch
  loop.  Block variants are keyed by predecessor only when the block
  actually contains ϕ-nodes.
* Signal delivery stays at call boundaries: every call closure runs the
  pending-signal dispatch its dispatch-loop counterpart would.

ChronoPriv's per-block counting call compiles to
``vm.chrono_count(n)`` — a direct method call instead of an intrinsic
dispatch — which the recorder overrides per-instance with a bare
counter-cell increment (see :mod:`repro.chronopriv.runtime`).

Known (accepted) divergences from the dispatch loop, all outside the
IR the frontend emits: reading an SSA temporary before its definition
yields the slot's initial ``0`` instead of a "use of undefined value"
error, and calling a defined function with too few arguments zero-fills
the missing parameters instead of erroring at first use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ir import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ConstantInt,
    ConstantString,
    FunctionRef,
    Function,
    GlobalVariable,
    ICmp,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
    UndefValue,
    Value,
)
from repro.ir.instructions import BINARY_OPS, ICMP_PREDICATES
from repro.vm.frame import StackSlot
from repro.vm.interpreter import ProgramExit, VMError

_BUDGET_MSG = "instruction budget exhausted (runaway program?)"

#: ChronoPriv's counting hook (kept literal to avoid an import cycle
#: with :mod:`repro.chronopriv.instrument`).
_CHRONO_COUNT = "__chrono_count"

#: Shared ``ret void`` result — terminators return either the next
#: :class:`_BlockCode` or a ``("ret", value)`` pair.
_RET_NONE = ("ret", None)

# Operand descriptor kinds (first element of the descriptor pair).
_REG = 0      # value lives in a register slot
_CONST = 1    # compile-time constant (int, str, FunctionRef, GlobalSlot)
_GLOBAL = 2   # GlobalVariable missing from vm.globals at compile time
_UNDEF = 3    # unresolvable value; using it raises the dispatch error


class _BlockCode:
    """One basic block (for one predecessor edge) in compiled form."""

    __slots__ = ("steps", "tails", "term", "count", "term_retires")

    def __init__(self) -> None:
        self.steps: Tuple[Callable, ...] = ()
        #: Per-step baked tail counts, for the budget slow path to undo a
        #: closure's own tail subtraction before re-raising.
        self.tails: Tuple[int, ...] = ()
        self.term: Callable = _unfilled_terminator
        #: Instructions this block pre-adds (steps + retiring terminator).
        self.count: int = 0
        #: False only for blocks missing a terminator: the dispatch loop
        #: raises *without* retiring an instruction there.
        self.term_retires: bool = True


def _unfilled_terminator(vm, regs):  # pragma: no cover - compile-time bug trap
    raise VMError("compiled block was never filled")


class CompiledFunction:
    """A compiled function body; called as ``code(vm, args)``."""

    __slots__ = ("function", "nregs", "argc", "entry")

    def __init__(self, function: Function, nregs: int, argc: int, entry: _BlockCode) -> None:
        self.function = function
        self.nregs = nregs
        self.argc = argc
        self.entry = entry

    def __call__(self, vm, args: List[Any]):
        regs = [0] * self.nregs
        argc = self.argc
        for index, value in enumerate(args):
            if index >= argc:
                break
            regs[index] = value
        code = self.entry
        maxi = vm.max_instructions
        while True:
            count = code.count
            vm.executed_instructions += count
            if vm.executed_instructions > maxi:
                vm.executed_instructions -= count
                nxt = _run_slow(vm, regs, code, maxi)
            else:
                for step in code.steps:
                    step(vm, regs)
                nxt = code.term(vm, regs)
            if nxt.__class__ is _BlockCode:
                code = nxt
            else:
                return nxt[1]


def _run_slow(vm, regs, code: _BlockCode, maxi: int):
    """Re-run one block with per-instruction counting (budget edge).

    The fast path's pre-add has been rolled back; retire instructions
    one at a time so the budget error fires at exactly the instruction
    the dispatch loop would raise on.  Step closures bake in a tail
    subtraction sized for the pre-added fast path, so a raise here is
    compensated from the parallel ``tails`` record.
    """
    tails = code.tails
    for index, step in enumerate(code.steps):
        vm.executed_instructions += 1
        if vm.executed_instructions > maxi:
            raise VMError(_BUDGET_MSG)
        try:
            step(vm, regs)
        except (VMError, ProgramExit):
            vm.executed_instructions += tails[index]
            raise
    if code.term_retires:
        vm.executed_instructions += 1
        if vm.executed_instructions > maxi:
            raise VMError(_BUDGET_MSG)
    return code.term(vm, regs)


def compile_function(vm, function: Function) -> CompiledFunction:
    """Compile ``function`` for ``vm`` (globals prebound to its slots)."""
    return _Compiler(vm, function).compile()


class _Compiler:
    def __init__(self, vm, function: Function) -> None:
        self.vm = vm
        self.function = function
        #: SSA value -> register slot.  Arguments first, then every
        #: instruction (identity-keyed, like the dispatch frame map).
        self.regmap: Dict[Value, int] = {}
        for argument in function.arguments:
            self.regmap[argument] = len(self.regmap)
        self.argc = len(self.regmap)
        for block in function.blocks:
            for instruction in block.instructions:
                self.regmap[instruction] = len(self.regmap)
        #: (block, pred-or-None) -> _BlockCode.  Blocks without ϕ-nodes
        #: compile once and share the code across every in-edge.
        self.variants: Dict[Tuple[Any, Any], _BlockCode] = {}
        self._worklist: List[Tuple[_BlockCode, Any, Any]] = []

    def compile(self) -> CompiledFunction:
        entry = self._variant(self.function.entry, None)
        while self._worklist:
            code, block, pred = self._worklist.pop()
            self._fill(code, block, pred)
        return CompiledFunction(self.function, len(self.regmap), self.argc, entry)

    def _variant(self, block, pred) -> _BlockCode:
        has_phi = any(isinstance(i, Phi) for i in block.instructions)
        key = (block, pred if has_phi else None)
        code = self.variants.get(key)
        if code is None:
            code = _BlockCode()
            self.variants[key] = code
            self._worklist.append((code, block, pred if has_phi else None))
        return code

    # -- operand resolution ---------------------------------------------------

    def _operand(self, value: Value) -> Tuple[int, Any]:
        index = self.regmap.get(value)
        if index is not None:
            return (_REG, index)
        if isinstance(value, (ConstantInt, ConstantString)):
            return (_CONST, value.value)
        if isinstance(value, FunctionRef):
            return (_CONST, value)
        if isinstance(value, GlobalVariable):
            slot = self.vm.globals.get(value)
            if slot is not None:
                return (_CONST, slot)
            return (_GLOBAL, value)
        if isinstance(value, UndefValue):
            return (_CONST, 0)
        return (
            _UNDEF,
            f"@{self.function.name}: use of undefined value {value.short()}",
        )

    def _fetch(self, desc: Tuple[int, Any]) -> Callable:
        kind, payload = desc
        if kind == _REG:
            index = payload

            def get(vm, regs, _i=index):
                return regs[_i]

        elif kind == _GLOBAL:

            def get(vm, regs, _v=payload):
                return vm.globals[_v]

        else:

            def get(vm, regs, _c=payload):
                return _c

        return get

    @staticmethod
    def _first_undef(*descs) -> Optional[str]:
        for kind, payload in descs:
            if kind == _UNDEF:
                return payload
        return None

    # -- block compilation ----------------------------------------------------

    def _fill(self, code: _BlockCode, block, pred) -> None:
        body: List[Any] = []
        terminator = None
        for instruction in block.instructions:
            if instruction.is_terminator:
                terminator = instruction
                break
            body.append(instruction)
        step_count = len(body)
        code.term_retires = terminator is not None
        code.count = step_count + (1 if terminator is not None else 0)
        steps: List[Callable] = []
        tails: List[int] = []
        for position, instruction in enumerate(body):
            # Pre-counted instructions that never retire if this one raises.
            tail = code.count - (position + 1)
            steps.append(self._compile_step(instruction, pred, tail))
            tails.append(tail)
        code.steps = tuple(steps)
        code.tails = tuple(tails)
        code.term = self._compile_terminator(terminator, block)

    def _compile_step(self, instruction, pred, tail: int) -> Callable:
        if isinstance(instruction, Phi):
            return self._compile_phi(instruction, pred, tail)
        if isinstance(instruction, Call):
            return self._compile_call(instruction, tail)
        if isinstance(instruction, BinOp):
            return self._compile_binop(instruction, tail)
        if isinstance(instruction, Load):
            return self._compile_load(instruction, tail)
        if isinstance(instruction, Store):
            return self._compile_store(instruction, tail)
        if isinstance(instruction, ICmp):
            return self._compile_icmp(instruction, tail)
        if isinstance(instruction, Select):
            return self._compile_select(instruction, tail)
        if isinstance(instruction, Alloca):
            dest = self.regmap[instruction]
            name = instruction.name

            def step(vm, regs, _d=dest, _n=name):
                regs[_d] = StackSlot(_n)

            return step
        # The instruction set is closed; match the dispatch-table error.
        return self._raiser(f"unknown instruction {instruction.opcode}", tail)

    def _raiser(self, message: str, tail: int) -> Callable:
        if tail:

            def step(vm, regs, _m=message, _t=tail):
                vm.executed_instructions -= _t
                raise VMError(_m)

        else:

            def step(vm, regs, _m=message):
                raise VMError(_m)

        return step

    def _compile_phi(self, instruction: Phi, pred, tail: int) -> Callable:
        incoming = instruction.incoming.get(pred)
        if incoming is None:
            return self._raiser(
                f"phi has no incoming for predecessor "
                f"%{pred.name if pred else '?'}",
                tail,
            )
        desc = self._operand(incoming)
        kind, payload = desc
        if kind == _UNDEF:
            return self._raiser(payload, tail)
        dest = self.regmap[instruction]
        if kind == _REG:

            def step(vm, regs, _d=dest, _s=payload):
                regs[_d] = regs[_s]

        elif kind == _GLOBAL:

            def step(vm, regs, _d=dest, _v=payload):
                regs[_d] = vm.globals[_v]

        else:

            def step(vm, regs, _d=dest, _c=payload):
                regs[_d] = _c

        return step

    def _compile_binop(self, instruction: BinOp, tail: int) -> Callable:
        lhs = self._operand(instruction.operands[0])
        rhs = self._operand(instruction.operands[1])
        undef = self._first_undef(lhs, rhs)
        if undef is not None:
            return self._raiser(undef, tail)
        dest = self.regmap[instruction]
        op = instruction.op
        opfn = BINARY_OPS[op]
        wrap = instruction.type.wrap
        if op in ("sdiv", "srem"):
            get_l = self._fetch(lhs)
            get_r = self._fetch(rhs)

            def step(vm, regs, _d=dest, _l=get_l, _r=get_r, _o=opfn, _w=wrap,
                     _op=op, _t=tail):
                try:
                    raw = _o(_l(vm, regs), _r(vm, regs))
                except ZeroDivisionError:
                    vm.executed_instructions -= _t
                    raise VMError(f"{_op} by zero") from None
                regs[_d] = _w(raw)

            return step
        if lhs[0] == _REG and rhs[0] == _REG:

            def step(vm, regs, _d=dest, _a=lhs[1], _b=rhs[1], _o=opfn, _w=wrap):
                regs[_d] = _w(_o(regs[_a], regs[_b]))

        elif lhs[0] == _REG and rhs[0] == _CONST:

            def step(vm, regs, _d=dest, _a=lhs[1], _k=rhs[1], _o=opfn, _w=wrap):
                regs[_d] = _w(_o(regs[_a], _k))

        elif lhs[0] == _CONST and rhs[0] == _REG:

            def step(vm, regs, _d=dest, _k=lhs[1], _b=rhs[1], _o=opfn, _w=wrap):
                regs[_d] = _w(_o(_k, regs[_b]))

        else:
            get_l = self._fetch(lhs)
            get_r = self._fetch(rhs)

            def step(vm, regs, _d=dest, _l=get_l, _r=get_r, _o=opfn, _w=wrap):
                regs[_d] = _w(_o(_l(vm, regs), _r(vm, regs)))

        return step

    def _compile_icmp(self, instruction: ICmp, tail: int) -> Callable:
        lhs = self._operand(instruction.operands[0])
        rhs = self._operand(instruction.operands[1])
        undef = self._first_undef(lhs, rhs)
        if undef is not None:
            return self._raiser(undef, tail)
        dest = self.regmap[instruction]
        predicate = ICMP_PREDICATES[instruction.predicate]
        if lhs[0] == _REG and rhs[0] == _REG:

            def step(vm, regs, _d=dest, _a=lhs[1], _b=rhs[1], _p=predicate):
                regs[_d] = int(_p(regs[_a], regs[_b]))

        elif lhs[0] == _REG and rhs[0] == _CONST:

            def step(vm, regs, _d=dest, _a=lhs[1], _k=rhs[1], _p=predicate):
                regs[_d] = int(_p(regs[_a], _k))

        elif lhs[0] == _CONST and rhs[0] == _REG:

            def step(vm, regs, _d=dest, _k=lhs[1], _b=rhs[1], _p=predicate):
                regs[_d] = int(_p(_k, regs[_b]))

        else:
            get_l = self._fetch(lhs)
            get_r = self._fetch(rhs)

            def step(vm, regs, _d=dest, _l=get_l, _r=get_r, _p=predicate):
                regs[_d] = int(_p(_l(vm, regs), _r(vm, regs)))

        return step

    def _compile_load(self, instruction: Load, tail: int) -> Callable:
        pointer = self._operand(instruction.pointer)
        kind, payload = pointer
        if kind == _UNDEF:
            return self._raiser(payload, tail)
        dest = self.regmap[instruction]
        if kind == _CONST and isinstance(payload, StackSlot):
            # Global load: the slot is prebound, no pointer check needed.

            def step(vm, regs, _d=dest, _s=payload):
                value = _s.value
                regs[_d] = 0 if value is None else value

            return step
        if kind == _CONST:
            return self._raiser(f"load through non-pointer {payload!r}", tail)
        get_p = self._fetch(pointer)

        def step(vm, regs, _d=dest, _g=get_p, _t=tail):
            slot = _g(vm, regs)
            if isinstance(slot, StackSlot):
                value = slot.value
                regs[_d] = 0 if value is None else value
            else:
                vm.executed_instructions -= _t
                raise VMError(f"load through non-pointer {slot!r}")

        return step

    def _compile_store(self, instruction: Store, tail: int) -> Callable:
        # Dispatch resolves the pointer first, then checks it, then
        # resolves the value; error precedence here matches that order.
        pointer = self._operand(instruction.pointer)
        kind, payload = pointer
        if kind == _UNDEF:
            return self._raiser(payload, tail)
        value = self._operand(instruction.value)
        if value[0] == _UNDEF:
            if kind == _CONST and isinstance(payload, StackSlot):
                return self._raiser(value[1], tail)
            if kind == _CONST:
                return self._raiser(
                    f"store through non-pointer {payload!r}", tail
                )
            get_p = self._fetch(pointer)

            def step(vm, regs, _g=get_p, _m=value[1], _t=tail):
                slot = _g(vm, regs)
                vm.executed_instructions -= _t
                if isinstance(slot, StackSlot):
                    raise VMError(_m)
                raise VMError(f"store through non-pointer {slot!r}")

            return step
        if kind == _CONST and isinstance(payload, StackSlot):
            if value[0] == _REG:

                def step(vm, regs, _s=payload, _v=value[1]):
                    _s.value = regs[_v]

            else:
                get_v = self._fetch(value)

                def step(vm, regs, _s=payload, _g=get_v):
                    _s.value = _g(vm, regs)

            return step
        if kind == _CONST:
            return self._raiser(f"store through non-pointer {payload!r}", tail)
        get_p = self._fetch(pointer)
        get_v = self._fetch(value)

        def step(vm, regs, _gp=get_p, _gv=get_v, _t=tail):
            slot = _gp(vm, regs)
            if isinstance(slot, StackSlot):
                slot.value = _gv(vm, regs)
            else:
                vm.executed_instructions -= _t
                raise VMError(f"store through non-pointer {slot!r}")

        return step

    def _compile_select(self, instruction: Select, tail: int) -> Callable:
        cond = self._operand(instruction.operands[0])
        if_true = self._operand(instruction.operands[1])
        if_false = self._operand(instruction.operands[2])
        undef = self._first_undef(cond, if_true, if_false)
        if undef is not None:
            return self._raiser(undef, tail)
        dest = self.regmap[instruction]
        if cond[0] == _REG and if_true[0] == _REG and if_false[0] == _REG:

            def step(vm, regs, _d=dest, _c=cond[1], _t=if_true[1], _f=if_false[1]):
                regs[_d] = regs[_t] if regs[_c] else regs[_f]

        else:
            get_c = self._fetch(cond)
            get_t = self._fetch(if_true)
            get_f = self._fetch(if_false)

            def step(vm, regs, _d=dest, _gc=get_c, _gt=get_t, _gf=get_f):
                # Like the dispatch handler, all three operands resolve.
                taken = _gt(vm, regs)
                other = _gf(vm, regs)
                regs[_d] = taken if _gc(vm, regs) else other

        return step

    def _compile_call(self, instruction: Call, tail: int) -> Callable:
        dest = self.regmap[instruction]
        arg_descs = [self._operand(arg) for arg in instruction.args]
        callee = instruction.callee
        if isinstance(callee, FunctionRef):
            undef = self._first_undef(*arg_descs)
            if undef is not None:
                return self._raiser(undef, tail)
            target = callee.function
            getters = tuple(self._fetch(desc) for desc in arg_descs)
            if target.is_declaration:
                if (
                    target.name == _CHRONO_COUNT
                    and len(instruction.args) == 1
                    and isinstance(instruction.args[0], ConstantInt)
                ):
                    return self._chrono_step(
                        dest, instruction.args[0].value, tail
                    )

                def step(vm, regs, _d=dest, _n=target.name, _g=getters, _t=tail):
                    try:
                        regs[_d] = vm._call_intrinsic(
                            _n, [g(vm, regs) for g in _g]
                        )
                        process = vm.process
                        if process.pending_signals or not process.alive:
                            vm._dispatch_pending_signals()
                    except (VMError, ProgramExit):
                        vm.executed_instructions -= _t
                        raise
                    if vm.executed_instructions - _t >= vm.max_instructions:
                        vm.executed_instructions -= _t - 1
                        raise VMError(_BUDGET_MSG)

                return step

            def step(vm, regs, _d=dest, _f=target, _g=getters, _t=tail):
                try:
                    regs[_d] = vm.call_function(_f, [g(vm, regs) for g in _g])
                    process = vm.process
                    if process.pending_signals or not process.alive:
                        vm._dispatch_pending_signals()
                except (VMError, ProgramExit):
                    vm.executed_instructions -= _t
                    raise
                if vm.executed_instructions - _t >= vm.max_instructions:
                    vm.executed_instructions -= _t - 1
                    raise VMError(_BUDGET_MSG)

            return step
        callee_desc = self._operand(callee)
        undef = self._first_undef(callee_desc, *arg_descs)
        if undef is not None:
            return self._raiser(undef, tail)
        get_callee = self._fetch(callee_desc)
        getters = tuple(self._fetch(desc) for desc in arg_descs)

        def step(vm, regs, _d=dest, _gc=get_callee, _g=getters, _t=tail):
            try:
                target = _gc(vm, regs)
                if not isinstance(target, FunctionRef):
                    raise VMError(
                        f"indirect call through non-function {target!r}"
                    )
                regs[_d] = vm.call_function(
                    target.function, [g(vm, regs) for g in _g]
                )
                process = vm.process
                if process.pending_signals or not process.alive:
                    vm._dispatch_pending_signals()
            except (VMError, ProgramExit):
                vm.executed_instructions -= _t
                raise
            if vm.executed_instructions - _t >= vm.max_instructions:
                vm.executed_instructions -= _t - 1
                raise VMError(_BUDGET_MSG)

        return step

    def _chrono_step(self, dest: int, count: int, tail: int) -> Callable:
        """ChronoPriv's per-block counter: a direct method call.

        ``vm.chrono_count`` defaults to the intrinsic dispatch (so inert
        and custom hooks keep working) and the recorder overrides it
        per-instance with a counter-cell increment.  Signal delivery at
        the call boundary is preserved.
        """

        def step(vm, regs, _d=dest, _k=count, _t=tail):
            try:
                regs[_d] = vm.chrono_count(_k)
                process = vm.process
                if process.pending_signals or not process.alive:
                    vm._dispatch_pending_signals()
            except (VMError, ProgramExit):
                vm.executed_instructions -= _t
                raise
            if vm.executed_instructions - _t >= vm.max_instructions:
                vm.executed_instructions -= _t - 1
                raise VMError(_BUDGET_MSG)

        return step

    # -- terminators ----------------------------------------------------------

    def _compile_terminator(self, instruction, block) -> Callable:
        function_name = self.function.name
        if instruction is None:

            def term(vm, regs, _m=(
                f"@{function_name}:%{block.name}: block without terminator"
            )):
                raise VMError(_m)

            return term
        if isinstance(instruction, Ret):
            value = instruction.value
            if value is None:

                def term(vm, regs):
                    return _RET_NONE

                return term
            desc = self._operand(value)
            kind, payload = desc
            if kind == _UNDEF:

                def term(vm, regs, _m=payload):
                    raise VMError(_m)

            elif kind == _REG:

                def term(vm, regs, _s=payload):
                    return ("ret", regs[_s])

            elif kind == _GLOBAL:

                def term(vm, regs, _v=payload):
                    return ("ret", vm.globals[_v])

            else:
                result = ("ret", payload)

                def term(vm, regs, _r=result):
                    return _r

            return term
        if isinstance(instruction, Jump):
            target = self._variant(instruction.target, block)

            def term(vm, regs, _n=target):
                return _n

            return term
        if isinstance(instruction, Branch):
            if_true = self._variant(instruction.if_true, block)
            if_false = self._variant(instruction.if_false, block)
            desc = self._operand(instruction.operands[0])
            kind, payload = desc
            if kind == _UNDEF:

                def term(vm, regs, _m=payload):
                    raise VMError(_m)

            elif kind == _REG:

                def term(vm, regs, _c=payload, _t=if_true, _f=if_false):
                    return _t if regs[_c] else _f

            else:
                get_c = self._fetch(desc)

                def term(vm, regs, _g=get_c, _t=if_true, _f=if_false):
                    return _t if _g(vm, regs) else _f

            return term
        if isinstance(instruction, Unreachable):

            def term(vm, regs, _m=(
                f"@{function_name}:%{block.name}: reached unreachable"
            )):
                raise VMError(_m)

            return term
        # pragma: no cover - the terminator set is closed
        def term(vm, regs, _m=f"unknown instruction {instruction.opcode}"):
            raise VMError(_m)

        return term
