"""Runtime value storage for the interpreter."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ir import Argument, BasicBlock, Function, Instruction, Value


class StackSlot:
    """The runtime object an ``alloca`` yields: one mutable cell."""

    __slots__ = ("value", "label")

    def __init__(self, label: str = "") -> None:
        self.value: Any = None
        self.label = label

    def __repr__(self) -> str:
        return f"<slot {self.label or id(self)}: {self.value!r}>"


class GlobalSlot(StackSlot):
    """The runtime cell behind a module-level global variable."""


class Frame:
    """One activation record: SSA value bindings plus local slots."""

    def __init__(self, function: Function, args) -> None:
        self.function = function
        self.values: Dict[Value, Any] = {}
        for argument, value in zip(function.arguments, args):
            self.values[argument] = value
        self.block: Optional[BasicBlock] = function.entry if function.blocks else None
        self.prev_block: Optional[BasicBlock] = None
        self.index = 0

    def set(self, instruction: Instruction, value) -> None:
        self.values[instruction] = value

    def get(self, value: Value):
        return self.values[value]

    def __repr__(self) -> str:
        return f"<Frame @{self.function.name} at %{self.block.name if self.block else '?'}:{self.index}>"
