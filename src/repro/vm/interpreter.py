"""The IR interpreter.

Executes one program (an IR module) as one process on a simulated
kernel.  The interpreter stands in for native execution of the paper's
instrumented binaries: deterministic, with exact per-instruction
accounting and hooks for the ChronoPriv runtime.

Design notes:

* SSA values live in per-frame dictionaries; ``alloca`` yields a
  :class:`~repro.vm.frame.StackSlot` cell, so pointers are first-class
  runtime objects;
* declarations (functions without bodies) dispatch to the intrinsics
  table — syscall wrappers, the AutoPriv ``priv_*`` runtime and libc-ish
  helpers (:mod:`repro.vm.intrinsics`);
* pending signals are dispatched at call boundaries by invoking the
  registered handler function in a nested frame, which is how the sshd
  model's privileged signal handlers execute;
* ``executed_instructions`` counts every IR instruction the VM retires —
  ground truth that tests compare against ChronoPriv's instrumented
  counts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.ir import (
    Alloca,
    Argument,
    BinOp,
    Branch,
    Call,
    ConstantInt,
    ConstantString,
    FunctionRef,
    Function,
    GlobalVariable,
    ICmp,
    Instruction,
    Jump,
    Load,
    Module,
    Phi,
    Ret,
    Select,
    Store,
    UndefValue,
    Unreachable,
    Value,
)
from repro.ir.instructions import BINARY_OPS, ICMP_PREDICATES
from repro.oskernel import Kernel, Process
from repro.vm.frame import Frame, GlobalSlot, StackSlot


#: Sentinel distinguishing "keep executing" from a genuine return value
#: (functions may legitimately return ``None``).
_CONTINUE = object()

#: Sentinel for the operand fast path (frame values may legitimately be None).
_MISSING = object()


#: The interpreter class the pipeline instantiates; ``None`` means the
#: stock dispatch-table :class:`Interpreter`.  See :func:`interpreter_class`.
_INTERPRETER_CLASS: Optional[type] = None


def interpreter_class() -> type:
    """The class the pipeline uses to execute programs.

    Defaults to :class:`Interpreter` (the dispatch-table VM).  The
    conformance testkit swaps in its straight-line reference interpreter
    with :func:`set_interpreter_class` to run whole differential
    pipelines; embedders can install instrumented subclasses the same way.
    """
    return _INTERPRETER_CLASS or Interpreter


def set_interpreter_class(cls: Optional[type]) -> Optional[type]:
    """Install ``cls`` as the pipeline's interpreter; returns the previous
    override (``None`` when the stock interpreter was active).  Pass
    ``None`` to restore the default."""
    global _INTERPRETER_CLASS
    previous = _INTERPRETER_CLASS
    _INTERPRETER_CLASS = cls
    return previous


class ProgramExit(Exception):
    """The program called ``exit()`` (or was killed by a signal)."""

    def __init__(self, code: int, signal: Optional[int] = None) -> None:
        super().__init__(f"exit({code})" + (f" by signal {signal}" if signal else ""))
        self.code = code
        self.signal = signal


class VMError(RuntimeError):
    """An execution error: the program did something undefined."""


class Interpreter:
    """Executes one module as one process.

    Defined-function calls route through the compiled closure core
    (:mod:`repro.vm.compiled`) by default; the dispatch-table loop in
    :meth:`_run_frame` remains the semantic reference and the fallback.
    Subclasses whose value lies in the per-instruction loop — the
    profiling interpreter, the testkit reference — set ``use_compiled``
    to ``False`` so their ``_run_frame`` overrides stay in charge.
    """

    #: Route defined-function calls through the compiled core.
    use_compiled = True

    def __init__(
        self,
        module: Module,
        kernel: Kernel,
        process: Process,
        argv: Sequence[str] = (),
        stdin: Sequence[str] = (),
        max_instructions: int = 50_000_000,
        metrics=None,
    ) -> None:
        from repro.vm.intrinsics import default_intrinsics

        self.module = module
        self.kernel = kernel
        self.process = process
        self.argv = list(argv)
        self.stdin: List[str] = list(stdin)
        self.stdout: List[str] = []
        self.max_instructions = max_instructions
        #: IR instructions retired (the VM's own ground-truth counter).
        self.executed_instructions = 0
        self.globals: Dict[GlobalVariable, GlobalSlot] = {}
        for var in module.globals.values():
            slot = GlobalSlot(var.name)
            slot.value = var.initial
            self.globals[var] = slot
        self.intrinsics: Dict[str, Callable] = default_intrinsics()
        #: Optional :class:`repro.telemetry.MetricsRegistry`; when set, the
        #: VM counts retired instructions and intrinsic/syscall dispatches.
        self.metrics = metrics
        #: Extra environment the workload provides (e.g. pending HTTP
        #: requests for thttpd, scp channel data for sshd).
        self.env: Dict[str, Any] = {}
        #: Callbacks invoked with each child VM created by ``spawn_wait``
        #: before it runs (ChronoPriv attaches per-process recorders here).
        self.child_observers: List[Callable[["Interpreter"], None]] = []
        #: Child VMs spawned by ``spawn_wait``, in creation order.
        self.children: List["Interpreter"] = []
        self._in_signal_handler = False
        self._call_depth = 0
        #: Per-VM compiled-function cache (globals are prebound to this
        #: VM's slots, so the cache cannot be shared across instances).
        self._compiled: Dict[Function, Callable] = {}
        self._dispatch: Dict[type, Callable] = {
            Alloca: self._step_alloca,
            Load: self._step_load,
            Store: self._step_store,
            BinOp: self._step_binop,
            ICmp: self._step_icmp,
            Select: self._step_select,
            Phi: self._step_phi,
            Call: self._step_call,
            Branch: self._step_branch,
            Jump: self._step_jump,
            Ret: self._step_ret,
            Unreachable: self._step_unreachable,
        }

    # -- public API -------------------------------------------------------------

    def register_intrinsic(self, name: str, fn: Callable) -> None:
        """Install or replace an intrinsic (``fn(vm, args) -> value``)."""
        self.intrinsics[name] = fn

    def run(self, entry: str = "main", args: Sequence[Any] = ()) -> int:
        """Execute ``entry`` to completion; returns the exit code.

        ``exit()`` and falling off ``main`` both terminate; a fatal signal
        reports 128+signum Unix-style.
        """
        function = self.module.get_function(entry)
        try:
            result = self.call_function(function, list(args))
        except ProgramExit as stop:
            return stop.code
        finally:
            if self.metrics is not None:
                self.metrics.counter("vm.instructions_executed").inc(
                    self.executed_instructions
                )
        return result if isinstance(result, int) else 0

    # -- execution core -----------------------------------------------------------

    def call_function(self, function: Function, args: List[Any]):
        """Call a defined function or dispatch a declaration to intrinsics."""
        if function.is_declaration:
            return self._call_intrinsic(function.name, args)
        # Each VM frame costs several Python frames; cap well below
        # Python's own recursion limit so we fail with a VM diagnostic.
        if self._call_depth > 150:
            raise VMError(f"call depth exceeded calling @{function.name}")
        self._call_depth += 1
        try:
            if self.use_compiled:
                code = self._compiled.get(function)
                if code is None:
                    from repro.vm.compiled import compile_function

                    code = self._compiled[function] = compile_function(
                        self, function
                    )
                return code(self, args)
            return self._run_frame(Frame(function, args))
        finally:
            self._call_depth -= 1

    def chrono_count(self, count: int):
        """ChronoPriv's per-block counting hook, as a direct method call.

        The compiled core calls this instead of dispatching the
        ``__chrono_count`` intrinsic; the default defers to the
        intrinsics table so inert counters (spawned children) and custom
        hooks behave identically on both cores, and the ChronoPriv
        recorder overrides it per-instance with a bare counter-cell
        increment (:meth:`repro.chronopriv.runtime.ChronoRecorder.attach`).
        """
        return self._call_intrinsic("__chrono_count", [count])

    def _call_intrinsic(self, name: str, args: List[Any]):
        fn = self.intrinsics.get(name)
        if fn is None:
            raise VMError(f"no intrinsic or definition for @{name}")
        if self.metrics is not None:
            from repro.vm.intrinsics import SYSCALL_INTRINSICS

            self.metrics.counter("vm.intrinsic_dispatches").inc()
            if name in SYSCALL_INTRINSICS:
                self.metrics.counter("vm.syscall_dispatches").inc()
                self.metrics.counter(f"vm.syscall.{name}").inc()
        return fn(self, args)

    def _run_frame(self, frame: Frame):
        # The dispatch table maps concrete instruction types to bound
        # handlers; ``type(instruction)`` is exact here because the IR
        # instruction set is closed, and one dict lookup replaces the
        # isinstance ladder on every retired instruction.
        dispatch = self._dispatch
        max_instructions = self.max_instructions
        while True:
            block = frame.block
            if block is None:
                raise VMError(f"@{frame.function.name}: fell off function end")
            if frame.index >= len(block.instructions):
                raise VMError(
                    f"@{frame.function.name}:%{block.name}: block without terminator"
                )
            instruction = block.instructions[frame.index]
            self.executed_instructions += 1
            if self.executed_instructions > max_instructions:
                raise VMError("instruction budget exhausted (runaway program?)")
            handler = dispatch.get(type(instruction))
            if handler is None:  # pragma: no cover - the instruction set is closed
                raise VMError(f"unknown instruction {instruction.opcode}")
            outcome = handler(frame, instruction)
            if outcome is not _CONTINUE:
                return outcome

    def _operand(self, frame: Frame, value: Value):
        # SSA temporaries vastly outnumber constants on the hot path, so
        # probe the frame's value map first and fall back to the literal
        # kinds only on a miss.
        resolved = frame.values.get(value, _MISSING)
        if resolved is not _MISSING:
            return resolved
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantString):
            return value.value
        if isinstance(value, FunctionRef):
            return value
        if isinstance(value, GlobalVariable):
            return self.globals[value]
        if isinstance(value, UndefValue):
            return 0
        raise VMError(
            f"@{frame.function.name}: use of undefined value {value.short()}"
        )

    def _retire(self, instruction: Instruction) -> None:
        self.executed_instructions += 1
        if self.executed_instructions > self.max_instructions:
            raise VMError("instruction budget exhausted (runaway program?)")

    def _step(self, frame: Frame, instruction: Instruction):
        """Retire and execute one instruction (the non-looping entry point).

        ``_run_frame`` inlines the retire bookkeeping and dispatch for
        speed; this method keeps the original single-step API for tests
        and embedders.
        """
        self._retire(instruction)
        handler = self._dispatch.get(type(instruction))
        if handler is None:  # pragma: no cover - the instruction set is closed
            raise VMError(f"unknown instruction {instruction.opcode}")
        return handler(frame, instruction)

    # -- per-opcode handlers ------------------------------------------------------

    def _step_alloca(self, frame: Frame, instruction):
        frame.values[instruction] = StackSlot(instruction.name)
        frame.index += 1
        return _CONTINUE

    def _step_load(self, frame: Frame, instruction):
        slot = self._operand(frame, instruction.pointer)
        if not isinstance(slot, StackSlot):
            raise VMError(f"load through non-pointer {slot!r}")
        frame.values[instruction] = slot.value if slot.value is not None else 0
        frame.index += 1
        return _CONTINUE

    def _step_store(self, frame: Frame, instruction):
        slot = self._operand(frame, instruction.pointer)
        if not isinstance(slot, StackSlot):
            raise VMError(f"store through non-pointer {slot!r}")
        slot.value = self._operand(frame, instruction.value)
        frame.index += 1
        return _CONTINUE

    def _step_binop(self, frame: Frame, instruction):
        operands = instruction.operands
        lhs = self._operand(frame, operands[0])
        rhs = self._operand(frame, operands[1])
        try:
            raw = BINARY_OPS[instruction.op](lhs, rhs)
        except ZeroDivisionError:
            raise VMError(f"{instruction.op} by zero") from None
        frame.values[instruction] = instruction.type.wrap(raw)
        frame.index += 1
        return _CONTINUE

    def _step_icmp(self, frame: Frame, instruction):
        operands = instruction.operands
        lhs = self._operand(frame, operands[0])
        rhs = self._operand(frame, operands[1])
        frame.values[instruction] = int(ICMP_PREDICATES[instruction.predicate](lhs, rhs))
        frame.index += 1
        return _CONTINUE

    def _step_select(self, frame: Frame, instruction):
        cond, if_true, if_false = (
            self._operand(frame, operand) for operand in instruction.operands
        )
        frame.values[instruction] = if_true if cond else if_false
        frame.index += 1
        return _CONTINUE

    def _step_phi(self, frame: Frame, instruction):
        incoming = instruction.incoming.get(frame.prev_block)
        if incoming is None:
            raise VMError(
                f"phi has no incoming for predecessor "
                f"%{frame.prev_block.name if frame.prev_block else '?'}"
            )
        frame.values[instruction] = self._operand(frame, incoming)
        frame.index += 1
        return _CONTINUE

    def _step_call(self, frame: Frame, instruction):
        result = self._execute_call(frame, instruction)
        frame.values[instruction] = result
        self._dispatch_pending_signals()
        frame.index += 1
        return _CONTINUE

    def _step_branch(self, frame: Frame, instruction):
        cond = self._operand(frame, instruction.operands[0])
        self._enter_block(frame, instruction.if_true if cond else instruction.if_false)
        return _CONTINUE

    def _step_jump(self, frame: Frame, instruction):
        self._enter_block(frame, instruction.target)
        return _CONTINUE

    def _step_ret(self, frame: Frame, instruction):
        if instruction.value is not None:
            return self._operand(frame, instruction.value)
        return None

    def _step_unreachable(self, frame: Frame, instruction):
        raise VMError(
            f"@{frame.function.name}:%{frame.block.name}: reached unreachable"
        )

    def _enter_block(self, frame: Frame, target) -> None:
        frame.prev_block = frame.block
        frame.block = target
        frame.index = 0

    def _execute_call(self, frame: Frame, call: Call):
        callee = call.callee
        if isinstance(callee, FunctionRef):
            target = callee.function
        else:
            runtime_callee = self._operand(frame, callee)
            if not isinstance(runtime_callee, FunctionRef):
                raise VMError(f"indirect call through non-function {runtime_callee!r}")
            target = runtime_callee.function
        args = [self._operand(frame, arg) for arg in call.args]
        return self.call_function(target, args)

    # -- signals --------------------------------------------------------------------

    def _dispatch_pending_signals(self) -> None:
        """Run queued signal handlers (nested; not re-entrant)."""
        if not self.process.alive:
            # A fatal signal (or exit) landed during the last syscall.
            raise ProgramExit(
                128 + (self.process.exit_signal or 0), self.process.exit_signal
            )
        if self._in_signal_handler or not self.process.pending_signals:
            return
        self._in_signal_handler = True
        try:
            while self.process.pending_signals:
                signum, handler_name = self.process.pending_signals.pop(0)
                handler = self.module.functions.get(handler_name)
                if handler is None:
                    raise VMError(f"signal handler @{handler_name} not found")
                self.call_function(handler, [signum])
        finally:
            self._in_signal_handler = False


class DispatchInterpreter(Interpreter):
    """The dispatch-table VM with the compiled core switched off.

    Semantically identical to :class:`Interpreter` — same handlers, same
    counters, same errors — but every instruction goes through the
    per-step dispatch loop.  The differential oracles and benchmarks use
    it as the independent slow side against the compiled core.
    """

    use_compiled = False
