"""The intrinsics table: what declared (external) functions do at runtime.

Three families:

* **AutoPriv runtime** — ``priv_raise`` / ``priv_lower`` / ``priv_remove``
  take a capability bit mask (the PrivC frontend exposes ``CAP_*``
  constants as single-bit masks that programs OR together), plus the
  ``prctl`` lockdown call the compiler inserts;
* **syscall wrappers** — thin bindings onto the simulated kernel using
  the C convention: non-negative success values, ``-errno`` on failure;
* **libc-ish helpers** — ``getspnam``, ``crypt``, string utilities, IO,
  and the workload plumbing (``net_accept`` etc.).  ``getspnam`` opens
  ``/etc/shadow`` through the kernel, so the DAC and capability checks
  apply exactly as they would to glibc's implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.caps import Capability, CapabilitySet
from repro.oskernel import EINVAL, SyscallError
from repro.oskernel.setup import PRIMARY_GROUPS, USERNAMES, USER_IDS
from repro.ir import FunctionRef


def _syscall(fn: Callable) -> Callable:
    """Translate SyscallError into a C-style negative return value."""

    def wrapper(vm, args):
        try:
            return fn(vm, args)
        except SyscallError as error:
            return -error.errno_value

    return wrapper


def _mask_to_caps(mask: int) -> CapabilitySet:
    return CapabilitySet.from_mask(mask)


# -- AutoPriv runtime ---------------------------------------------------------


@_syscall
def _priv_raise(vm, args):
    return vm.kernel.sys_priv_raise(vm.process.pid, _mask_to_caps(args[0]))


@_syscall
def _priv_lower(vm, args):
    return vm.kernel.sys_priv_lower(vm.process.pid, _mask_to_caps(args[0]))


@_syscall
def _priv_remove(vm, args):
    return vm.kernel.sys_priv_remove(vm.process.pid, _mask_to_caps(args[0]))


@_syscall
def _prctl_lockdown(vm, args):
    return vm.kernel.sys_prctl_lockdown(vm.process.pid)


# -- credentials -----------------------------------------------------------------


def _make_getter(method: str):
    def getter(vm, args):
        return getattr(vm.kernel, method)(vm.process.pid)

    return getter


@_syscall
def _setuid(vm, args):
    return vm.kernel.sys_setuid(vm.process.pid, args[0])


@_syscall
def _seteuid(vm, args):
    return vm.kernel.sys_seteuid(vm.process.pid, args[0])


@_syscall
def _setresuid(vm, args):
    return vm.kernel.sys_setresuid(vm.process.pid, args[0], args[1], args[2])


@_syscall
def _setgid(vm, args):
    return vm.kernel.sys_setgid(vm.process.pid, args[0])


@_syscall
def _setegid(vm, args):
    return vm.kernel.sys_setegid(vm.process.pid, args[0])


@_syscall
def _setresgid(vm, args):
    return vm.kernel.sys_setresgid(vm.process.pid, args[0], args[1], args[2])


@_syscall
def _setgroups1(vm, args):
    """setgroups(2) with a single supplementary group (enough for su)."""
    return vm.kernel.sys_setgroups(vm.process.pid, (args[0],))


@_syscall
def _setgroups0(vm, args):
    """setgroups(2) clearing the supplementary list."""
    return vm.kernel.sys_setgroups(vm.process.pid, ())


# -- files -------------------------------------------------------------------------


@_syscall
def _open(vm, args):
    path, flags = args[0], args[1]
    mode = args[2] if len(args) > 2 else 0o600
    return vm.kernel.sys_open(vm.process.pid, path, flags, mode)


@_syscall
def _read(vm, args):
    return vm.kernel.sys_read(vm.process.pid, args[0])


@_syscall
def _write(vm, args):
    return vm.kernel.sys_write(vm.process.pid, args[0], args[1])


@_syscall
def _ftruncate(vm, args):
    return vm.kernel.sys_truncate_fd(vm.process.pid, args[0])


@_syscall
def _close(vm, args):
    return vm.kernel.sys_close(vm.process.pid, args[0])


@_syscall
def _chmod(vm, args):
    return vm.kernel.sys_chmod(vm.process.pid, args[0], args[1])


@_syscall
def _fchmod(vm, args):
    return vm.kernel.sys_fchmod(vm.process.pid, args[0], args[1])


@_syscall
def _chown(vm, args):
    return vm.kernel.sys_chown(vm.process.pid, args[0], args[1], args[2])


@_syscall
def _fchown(vm, args):
    return vm.kernel.sys_fchown(vm.process.pid, args[0], args[1], args[2])


@_syscall
def _unlink(vm, args):
    return vm.kernel.sys_unlink(vm.process.pid, args[0])


@_syscall
def _rename(vm, args):
    return vm.kernel.sys_rename(vm.process.pid, args[0], args[1])


@_syscall
def _access(vm, args):
    return vm.kernel.sys_access(vm.process.pid, args[0], args[1])


def _stat_field(field: str):
    @_syscall
    def stat_getter(vm, args):
        stat = vm.kernel.sys_stat(vm.process.pid, args[0])
        return getattr(stat, field)

    return stat_getter


def _stat_exists(vm, args):
    try:
        vm.kernel.sys_stat(vm.process.pid, args[0])
        return 1
    except SyscallError:
        return 0


@_syscall
def _chroot(vm, args):
    return vm.kernel.sys_chroot(vm.process.pid, args[0])


# -- sockets ------------------------------------------------------------------------


@_syscall
def _socket(vm, args):
    return vm.kernel.sys_socket(vm.process.pid)


@_syscall
def _socket_raw(vm, args):
    return vm.kernel.sys_socket(vm.process.pid, raw=True)


@_syscall
def _setsockopt(vm, args):
    return vm.kernel.sys_setsockopt(vm.process.pid, args[0], args[1])


@_syscall
def _bind(vm, args):
    return vm.kernel.sys_bind(vm.process.pid, args[0], args[1])


@_syscall
def _listen(vm, args):
    return vm.kernel.sys_listen(vm.process.pid, args[0])


@_syscall
def _connect(vm, args):
    return vm.kernel.sys_connect(vm.process.pid, args[0], args[1])


def _net_accept(vm, args):
    """Pop the next pending connection id the workload queued; -1 when done."""
    pending: List[int] = vm.env.setdefault("connections", [])
    return pending.pop(0) if pending else -1


def _net_recv(vm, args):
    incoming: List[str] = vm.env.setdefault("incoming", [])
    return incoming.pop(0) if incoming else ""


def _net_send(vm, args):
    vm.env.setdefault("sent", []).append(args[1])
    return len(args[1])


# -- signals ---------------------------------------------------------------------------


@_syscall
def _signal(vm, args):
    signum, handler = args
    if isinstance(handler, FunctionRef):
        handler_name = handler.function.name
    else:
        handler_name = handler  # SIG_IGN / SIG_DFL strings
    return vm.kernel.sys_signal(vm.process.pid, signum, handler_name)


@_syscall
def _kill(vm, args):
    return vm.kernel.sys_kill(vm.process.pid, args[0], args[1])


def _getpid(vm, args):
    return vm.process.pid


def _spawn_wait(vm, args):
    """fork(2) + run the child + waitpid(2), collapsed into one call.

    ``spawn_wait(&child_main, arg)`` forks a child process (inheriting
    credentials and capability sets), executes ``child_main(arg)`` in it
    to completion, and returns the child's exit code to the parent.  The
    VM is single-threaded, so running the child to completion before the
    parent resumes models the fork/handle/waitpid structure of forking
    servers whose parent blocks on the child (sshd -d, su).

    The child shares the parent's module, kernel and workload environment
    but has its own process (fresh descriptor table) and its own stdout.
    Observers registered via ``vm.child_observers`` are called with the
    child VM before it runs — ChronoPriv uses this to attach a per-process
    recorder.
    """
    from repro.ir import FunctionRef
    from repro.vm.interpreter import ProgramExit

    handler, arg = args[0], args[1] if len(args) > 1 else 0
    if not isinstance(handler, FunctionRef):
        return -EINVAL
    child_process = vm.kernel.sys_fork(vm.process.pid)
    # fork(2) clones the parent's execution engine: a reference or
    # instrumented interpreter subclass spawns children of its own kind.
    child_vm = type(vm)(vm.module, vm.kernel, child_process, argv=vm.argv)
    child_vm.env = vm.env  # share the workload queues
    # fork(2) copies the address space: globals carry their current
    # values into the child, then diverge.
    for var, slot in vm.globals.items():
        child_vm.globals[var].value = slot.value
    # Copy the intrinsics table so per-process hooks diverge; the parent's
    # ChronoPriv recorder must not absorb the child's counts (phases are
    # per-process), so the child starts with the inert counter until an
    # observer attaches its own recorder.
    child_vm.intrinsics = dict(vm.intrinsics)
    child_vm.intrinsics["__chrono_count"] = _chrono_count
    for observer in vm.child_observers:
        observer(child_vm)
    try:
        result = child_vm.call_function(handler.function, [arg])
        exit_code = result if isinstance(result, int) else 0
    except ProgramExit as stop:
        exit_code = stop.code
    vm.kernel.sys_exit(child_process.pid)
    vm.stdout.extend(child_vm.stdout)
    vm.children = getattr(vm, "children", [])
    vm.children.append(child_vm)
    return exit_code


def _exit(vm, args):
    from repro.vm.interpreter import ProgramExit

    raise ProgramExit(args[0] if args else 0)


# -- libc-ish helpers -----------------------------------------------------------------------


def _getspnam(vm, args):
    """Look up a user's password hash in /etc/shadow.

    Returns "" when the user is absent *or* when the process lacks
    permission to read the shadow database — which is the behaviour the
    programs under study check for (§VII-C: passwd/su need
    CAP_DAC_READ_SEARCH here).
    """
    username = args[0]
    try:
        fd = vm.kernel.sys_open(vm.process.pid, "/etc/shadow", "r")
    except SyscallError:
        return ""
    content = vm.kernel.sys_read(vm.process.pid, fd)
    vm.kernel.sys_close(vm.process.pid, fd)
    for line in content.splitlines():
        fields = line.split(":")
        if fields and fields[0] == username:
            return fields[1]
    return ""


def _update_shadow_hash(content: str, username: str, new_hash: str) -> str:
    lines = []
    for line in content.splitlines():
        fields = line.split(":")
        if fields and fields[0] == username:
            fields[1] = new_hash
            line = ":".join(fields)
        lines.append(line)
    return "\n".join(lines) + "\n"


def _shadow_replace_hash(vm, args):
    """Pure helper: rewrite one user's hash within shadow-format text."""
    return _update_shadow_hash(args[0], args[1], args[2])


def _getpwnam_uid(vm, args):
    return USER_IDS.get(args[0], -1)


def _getpwuid_name(vm, args):
    return USERNAMES.get(args[0], "")


def _getpw_gid(vm, args):
    """Primary group of a uid (from the passwd database)."""
    return PRIMARY_GROUPS.get(args[0], -1)


def _crypt(vm, args):
    """A stand-in for crypt(3): deterministic, salt-prefixed."""
    password = args[0]
    return f"$6${password}"


# -- strings ----------------------------------------------------------------------------------


def _streq(vm, args):
    return int(args[0] == args[1])


def _strlen(vm, args):
    return len(args[0])


def _strcat(vm, args):
    return args[0] + args[1]


def _str_field(vm, args):
    """Split ``args[0]`` on ``args[2]`` and return field ``args[1]`` ("" if absent)."""
    text, index, sep = args
    fields = text.split(sep)
    return fields[index] if 0 <= index < len(fields) else ""


def _int_to_str(vm, args):
    return str(args[0])


def _str_to_int(vm, args):
    """atoi(3): leading integer, 0 when unparsable."""
    text = str(args[0]).strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    digits = ""
    for char in text:
        if not char.isdigit():
            break
        digits += char
    if not digits:
        return 0
    return -int(digits) if negative else int(digits)


# -- IO and environment ----------------------------------------------------------------------


def _print_str(vm, args):
    vm.stdout.append(str(args[0]))
    return 0


def _print_int(vm, args):
    vm.stdout.append(str(args[0]))
    return 0


def _read_line(vm, args):
    return vm.stdin.pop(0) if vm.stdin else ""


def _getpass(vm, args):
    return vm.stdin.pop(0) if vm.stdin else ""


def _argc(vm, args):
    return len(vm.argv)


def _arg_str(vm, args):
    index = args[0]
    return vm.argv[index] if 0 <= index < len(vm.argv) else ""


def _sleep(vm, args):
    return 0


def _chrono_count(vm, args):
    """ChronoPriv's per-block hook; inert until the runtime replaces it."""
    return 0


#: Intrinsics that enter the simulated kernel (the VM's telemetry counts
#: dispatches to these as syscalls; libc-ish helpers and workload plumbing
#: are excluded, but note ``getspnam`` opens /etc/shadow internally).
SYSCALL_INTRINSICS = frozenset({
    "priv_raise", "priv_lower", "priv_remove", "prctl_lockdown",
    "getuid", "geteuid", "getgid", "getegid",
    "setuid", "seteuid", "setresuid", "setgid", "setegid", "setresgid",
    "setgroups1", "setgroups0",
    "open", "read", "write", "ftruncate", "close",
    "chmod", "fchmod", "chown", "fchown", "unlink", "rename", "access",
    "stat_owner", "stat_group", "stat_mode", "stat_exists", "chroot",
    "socket", "socket_raw", "setsockopt", "bind", "listen", "connect",
    "signal", "kill", "spawn_wait", "exit",
})


def default_intrinsics() -> Dict[str, Callable]:
    """The full intrinsics table a fresh interpreter starts with."""
    return {
        # AutoPriv runtime
        "priv_raise": _priv_raise,
        "priv_lower": _priv_lower,
        "priv_remove": _priv_remove,
        "prctl_lockdown": _prctl_lockdown,
        # credentials
        "getuid": _make_getter("sys_getuid"),
        "geteuid": _make_getter("sys_geteuid"),
        "getgid": _make_getter("sys_getgid"),
        "getegid": _make_getter("sys_getegid"),
        "setuid": _setuid,
        "seteuid": _seteuid,
        "setresuid": _setresuid,
        "setgid": _setgid,
        "setegid": _setegid,
        "setresgid": _setresgid,
        "setgroups1": _setgroups1,
        "setgroups0": _setgroups0,
        # files
        "open": _open,
        "read": _read,
        "write": _write,
        "ftruncate": _ftruncate,
        "close": _close,
        "chmod": _chmod,
        "fchmod": _fchmod,
        "chown": _chown,
        "fchown": _fchown,
        "unlink": _unlink,
        "rename": _rename,
        "access": _access,
        "stat_owner": _stat_field("owner"),
        "stat_group": _stat_field("group"),
        "stat_mode": _stat_field("mode"),
        "stat_exists": _stat_exists,
        "chroot": _chroot,
        # sockets
        "socket": _socket,
        "socket_raw": _socket_raw,
        "setsockopt": _setsockopt,
        "bind": _bind,
        "listen": _listen,
        "connect": _connect,
        "net_accept": _net_accept,
        "net_recv": _net_recv,
        "net_send": _net_send,
        # signals / process
        "signal": _signal,
        "kill": _kill,
        "getpid": _getpid,
        "spawn_wait": _spawn_wait,
        "exit": _exit,
        # libc-ish
        "getspnam": _getspnam,
        "shadow_replace_hash": _shadow_replace_hash,
        "getpwnam_uid": _getpwnam_uid,
        "getpwuid_name": _getpwuid_name,
        "getpw_gid": _getpw_gid,
        "crypt": _crypt,
        "streq": _streq,
        "strlen": _strlen,
        "strcat": _strcat,
        "str_field": _str_field,
        "int_to_str": _int_to_str,
        "str_to_int": _str_to_int,
        # IO / environment
        "print_str": _print_str,
        "print_int": _print_int,
        "read_line": _read_line,
        "getpass": _getpass,
        "argc": _argc,
        "arg_str": _arg_str,
        "sleep": _sleep,
        # ChronoPriv hook (replaced when instrumentation is active)
        "__chrono_count": _chrono_count,
    }
