"""Per-opcode and per-intrinsic cost attribution for the IR interpreter.

:class:`ProfilingInterpreter` is a drop-in :class:`~repro.vm.Interpreter`
subclass whose dispatch loop times every retired instruction and every
intrinsic call against an attached :class:`~repro.telemetry.Profiler`:

``("vm", "op:<opcode>")``
    Self time of one instruction kind's handler.  Times are *exclusive*:
    a ``call`` instruction's record covers only the dispatch overhead,
    not the callee's instructions (which are attributed to their own
    opcodes) nor intrinsic bodies.
``("vm", "intrinsic:<name>")``
    Self time of one intrinsic (syscall wrappers, the AutoPriv runtime,
    libc-ish helpers).  ``intrinsic:__chrono_count`` is ChronoPriv's
    per-basic-block hook — its total is exactly the instrumentation tax
    the paper's counting layer adds to every block.

Exclusive timing uses a nested-time ledger: each frame and intrinsic
records its total wall time into ``self._nested`` on exit, and the
caller subtracts the delta from its own handler window.  A frame *sets*
the ledger to its start value plus its own wall (rather than adding),
so doubly-nested work is never subtracted twice.

Profiling stays opt-in: with no profiler attached (or a disabled one),
``_run_frame`` and ``_call_intrinsic`` defer to the stock fast paths.
The pipeline installs this class only when a live profiler is present
and no custom interpreter class overrides the stock one, so verdicts,
instruction counts and exposure tables are bit-identical either way.
"""

from __future__ import annotations

from repro.telemetry.profiler import NULL_PROFILER, Profiler
from repro.vm.interpreter import Interpreter, VMError
from repro.vm.interpreter import _CONTINUE  # noqa: F401  (dispatch sentinel)


class ProfilingInterpreter(Interpreter):
    """An interpreter that attributes wall time per opcode and intrinsic."""

    #: Per-opcode attribution needs the per-instruction dispatch loop;
    #: the compiled core has no handler windows to time.
    use_compiled = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Attach after construction (``vm.profiler = profiler``); the
        #: constructor signature must stay interchangeable with the stock
        #: interpreter's (``spawn_wait`` children are built positionally).
        self.profiler: Profiler = NULL_PROFILER
        #: Wall seconds consumed by nested frames/intrinsics, used to
        #: make per-opcode times exclusive (see module docstring).
        self._nested = 0.0

    def attach(self, profiler: Profiler) -> "ProfilingInterpreter":
        """Attach ``profiler`` here and to every future spawned child."""
        self.profiler = profiler
        self.child_observers.append(
            lambda child: child.attach(profiler)
            if isinstance(child, ProfilingInterpreter)
            else None
        )
        return self

    def _run_frame(self, frame):
        profiler = self.profiler
        if not profiler.enabled:
            return super()._run_frame(frame)
        clock = profiler.clock
        account = profiler.account
        dispatch = self._dispatch
        max_instructions = self.max_instructions
        nested_at_entry = self._nested
        frame_start = clock()
        try:
            while True:
                block = frame.block
                if block is None:
                    raise VMError(f"@{frame.function.name}: fell off function end")
                if frame.index >= len(block.instructions):
                    raise VMError(
                        f"@{frame.function.name}:%{block.name}: block without terminator"
                    )
                instruction = block.instructions[frame.index]
                self.executed_instructions += 1
                if self.executed_instructions > max_instructions:
                    raise VMError("instruction budget exhausted (runaway program?)")
                handler = dispatch.get(type(instruction))
                if handler is None:  # pragma: no cover - the instruction set is closed
                    raise VMError(f"unknown instruction {instruction.opcode}")
                nested_before = self._nested
                start = clock()
                outcome = handler(frame, instruction)
                elapsed = (clock() - start) - (self._nested - nested_before)
                account(
                    ("vm", "op:" + instruction.opcode),
                    elapsed if elapsed > 0.0 else 0.0,
                )
                if outcome is not _CONTINUE:
                    return outcome
        finally:
            # Replace (not add to) the ledger: nested work inside this
            # frame is subsumed by the frame's own wall time.
            self._nested = nested_at_entry + (clock() - frame_start)

    def _call_intrinsic(self, name, args):
        profiler = self.profiler
        if not profiler.enabled:
            return super()._call_intrinsic(name, args)
        clock = profiler.clock
        nested_at_entry = self._nested
        start = clock()
        try:
            return super()._call_intrinsic(name, args)
        finally:
            elapsed = clock() - start
            self_time = elapsed - (self._nested - nested_at_entry)
            profiler.account(
                ("vm", "intrinsic:" + name), self_time if self_time > 0.0 else 0.0
            )
            self._nested = nested_at_entry + elapsed
