"""AutoPriv: privilege-use discovery, liveness, and the remove transform."""

import pytest

from repro.autopriv import analyze_module, transform_module
from repro.autopriv.privuse import (
    direct_uses,
    fold_constant,
    mask_argument,
    registered_signal_handlers,
)
from repro.caps import Capability, CapabilitySet
from repro.frontend import compile_source
from repro.ir import Call, verify_module
from repro.oskernel.setup import build_kernel, UID_USER, GID_USER
from repro.vm import Interpreter


def compile_and_transform(source, *caps, **kwargs):
    module = compile_source(source)
    report = transform_module(module, CapabilitySet.of(*caps), **kwargs)
    verify_module(module)
    return module, report


def run_transformed(module, *caps, argv=(), stdin=()):
    kernel = build_kernel()
    process = kernel.spawn(UID_USER, GID_USER, permitted=CapabilitySet.of(*caps))
    vm = Interpreter(module, kernel, process, argv=list(argv), stdin=list(stdin))
    code = vm.run()
    return code, vm.stdout, process


class TestConstantFolding:
    def test_folds_or_of_constants(self):
        source = """
        void main() { priv_raise(CAP_SETUID | CAP_CHOWN); }
        """
        module = compile_source(source)
        calls = [
            inst
            for inst in module.get_function("main").instructions()
            if isinstance(inst, Call) and inst.direct_target.name == "priv_raise"
        ]
        caps = mask_argument(calls[0])
        assert caps == CapabilitySet.of("CapSetuid", "CapChown")

    def test_non_constant_mask_is_conservative(self):
        source = """
        void main(){
            int m = arg_str(0) == arg_str(1);
            priv_raise(m);
        }
        """
        module = compile_source(source)
        calls = [
            inst
            for inst in module.get_function("main").instructions()
            if isinstance(inst, Call) and inst.direct_target.name == "priv_raise"
        ]
        assert mask_argument(calls[0]) == CapabilitySet.full()

    def test_fold_handles_arithmetic(self):
        from repro.ir import BinOp, ConstantInt, I64

        tree = BinOp("shl", ConstantInt(I64, 1), ConstantInt(I64, 7))
        assert fold_constant(tree) == 1 << 7


class TestDirectUses:
    def test_raise_and_lower_both_count(self):
        source = """
        void f() {
            priv_raise(CAP_SETUID);
            setuid(0);
            priv_lower(CAP_SETUID);
        }
        void main() { f(); }
        """
        module = compile_source(source)
        assert direct_uses(module.get_function("f")) == CapabilitySet.of("CapSetuid")
        assert direct_uses(module.get_function("main")) == CapabilitySet.empty()

    def test_handlers_detected(self):
        source = """
        void h(int s) { priv_raise(CAP_KILL); priv_lower(CAP_KILL); }
        void main() { signal(SIGTERM, &h); }
        """
        module = compile_source(source)
        handlers = registered_signal_handlers(module)
        assert {f.name for f in handlers} == {"h"}


class TestLiveness:
    def test_privilege_dead_after_bracket(self):
        source = """
        void main() {
            priv_raise(CAP_SETUID);
            setuid(0);
            priv_lower(CAP_SETUID);
            print_int(1);
        }
        """
        module = compile_source(source)
        liveness = analyze_module(module)
        main = module.get_function("main")
        # Entry block holds everything; the capability must be live at
        # entry and dead at exit.
        entry_in = liveness.block_in[main][main.entry]
        assert Capability.CAP_SETUID in entry_in

    def test_loop_keeps_privilege_live(self):
        source = """
        void main() {
            int i;
            for (i = 0; i < 3; i = i + 1) {
                priv_raise(CAP_SETUID);
                setuid(0);
                priv_lower(CAP_SETUID);
            }
            print_int(1);
        }
        """
        module = compile_source(source)
        liveness = analyze_module(module)
        main = module.get_function("main")
        by_name = {block.name: block for block in main.blocks}
        # Live on the back edge (for.step feeds for.cond).
        assert Capability.CAP_SETUID in liveness.block_out[main][by_name["for.step"]]
        assert Capability.CAP_SETUID not in liveness.block_in[main][by_name["for.end"]]

    def test_interprocedural_live_out(self):
        source = """
        void helper() { priv_raise(CAP_CHOWN); chown("/x", 0, 0); priv_lower(CAP_CHOWN); }
        void main() {
            print_int(1);
            helper();
            print_int(2);
            helper();
        }
        """
        module = compile_source(source)
        liveness = analyze_module(module)
        helper = module.get_function("helper")
        # After helper's first return the caller calls it again, so the
        # privilege must be live-out of helper.
        assert Capability.CAP_CHOWN in liveness.live_out[helper].as_frozenset()

    def test_pinned_handler_privileges(self):
        source = """
        void h(int s) { priv_raise(CAP_KILL); kill(1, 0); priv_lower(CAP_KILL); }
        void main() { signal(SIGTERM, &h); print_int(1); }
        """
        module = compile_source(source)
        liveness = analyze_module(module)
        assert Capability.CAP_KILL in liveness.pinned


class TestTransform:
    def test_unused_privilege_removed_at_entry(self):
        module, report = compile_and_transform(
            "void main() { print_int(1); }", "CapChown", "CapSetuid"
        )
        assert report.entry_removed == CapabilitySet.of("CapChown", "CapSetuid")

    def test_used_privilege_not_removed_at_entry(self):
        source = """
        void main() {
            priv_raise(CAP_SETUID);
            setuid(0);
            priv_lower(CAP_SETUID);
        }
        """
        module, report = compile_and_transform(source, "CapSetuid", "CapChown")
        assert report.entry_removed == CapabilitySet.of("CapChown")

    def test_transformed_program_still_works(self):
        source = """
        void main() {
            priv_raise(CAP_DAC_READ_SEARCH);
            str h = getspnam("user");
            priv_lower(CAP_DAC_READ_SEARCH);
            if (strlen(h) > 0) { print_str("ok"); }
        }
        """
        module, _ = compile_and_transform(source, "CapDacReadSearch")
        code, out, process = run_transformed(module, "CapDacReadSearch")
        assert out == ["ok"]
        assert process.caps.permitted == CapabilitySet.empty()

    def test_permitted_shrinks_to_empty_by_exit(self):
        source = """
        void main() {
            priv_raise(CAP_SETUID);
            setuid(0);
            priv_lower(CAP_SETUID);
            priv_raise(CAP_SETGID);
            setgid(0);
            priv_lower(CAP_SETGID);
        }
        """
        module, _ = compile_and_transform(source, "CapSetuid", "CapSetgid")
        _, _, process = run_transformed(module, "CapSetuid", "CapSetgid")
        assert process.caps.permitted == CapabilitySet.empty()

    def test_removal_is_ordered_not_premature(self):
        """A later second use must hold the privilege across the gap."""
        source = """
        void use_it() {
            priv_raise(CAP_SETGID);
            setgid(1000);
            priv_lower(CAP_SETGID);
        }
        void main() {
            use_it();
            print_int(1);
            use_it();
        }
        """
        module, _ = compile_and_transform(source, "CapSetgid")
        code, out, process = run_transformed(module, "CapSetgid")
        assert code == 0
        assert out == ["1"]
        assert process.caps.permitted == CapabilitySet.empty()

    def test_pinned_privileges_never_removed(self):
        source = """
        void h(int s) { priv_raise(CAP_KILL); kill(getpid(), 0); priv_lower(CAP_KILL); }
        void main() { signal(SIGTERM, &h); print_int(1); }
        """
        module, report = compile_and_transform(source, "CapKill")
        assert "CapKill" in report.pinned
        _, _, process = run_transformed(module, "CapKill")
        assert "CapKill" in process.caps.permitted

    def test_lockdown_inserted_first(self):
        module, _ = compile_and_transform("void main() { print_int(1); }", "CapChown")
        entry = module.get_function("main").entry
        first = entry.instructions[0]
        assert isinstance(first, Call)
        assert first.direct_target.name == "prctl_lockdown"

    def test_lockdown_can_be_disabled(self):
        module = compile_source("void main() { print_int(1); }")
        transform_module(module, CapabilitySet.of("CapChown"), insert_lockdown=False)
        entry = module.get_function("main").entry
        names = [
            inst.direct_target.name
            for inst in entry.instructions
            if isinstance(inst, Call) and inst.direct_target is not None
        ]
        assert "prctl_lockdown" not in names

    def test_conditional_use_keeps_privilege_until_branch_dead(self):
        """A privilege used only in an untaken branch must survive until
        the branch point, then die — and the program must not crash."""
        source = """
        void maybe(int flag) {
            if (flag == 1) {
                priv_raise(CAP_SETUID);
                setuid(0);
                priv_lower(CAP_SETUID);
            }
        }
        void main() {
            maybe(0);
            print_int(getuid());
        }
        """
        module, _ = compile_and_transform(source, "CapSetuid")
        code, out, process = run_transformed(module, "CapSetuid")
        assert out == ["1000"]
        assert process.caps.permitted == CapabilitySet.empty()


class TestCallGraphPrecisionAblation:
    """The A2 ablation mechanism: conservative vs type-matched targets."""

    SOURCE = """
    int quiet(int x) { return x; }
    int loud(int x, int y) {
        priv_raise(CAP_CHOWN);
        chown("/x", 0, 0);
        priv_lower(CAP_CHOWN);
        return x + y;
    }
    void main() {
        fnptr f = &quiet;
        if (argc() == 99) { f = &loud; }
        int i;
        for (i = 0; i < 3; i = i + 1) {
            int r = f(i);
        }
        print_int(1);
    }
    """

    def test_conservative_keeps_cap_through_loop(self):
        module = compile_source(self.SOURCE)
        report = transform_module(
            module, CapabilitySet.of("CapChown"),
            indirect_targets_filter="address-taken",
        )
        # Not removable at entry: the indirect call might (conservatively)
        # reach loud().
        assert "CapChown" not in report.entry_removed

    def test_type_matched_removes_at_entry(self):
        module = compile_source(self.SOURCE)
        report = transform_module(
            module, CapabilitySet.of("CapChown"),
            indirect_targets_filter="type-matched",
        )
        # loud() takes 2 parameters; the call site passes 1, so the precise
        # call graph proves CapChown unreachable.
        assert "CapChown" in report.entry_removed
