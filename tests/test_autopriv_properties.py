"""Property-based differential testing of the AutoPriv transform.

AutoPriv's contract (§V) is that inserting ``priv_remove`` at privilege-
death points is *safe*: the transformed program behaves identically to
the original, because a removed privilege is never needed again.  These
tests generate random PrivC programs — nested control flow, helper
calls, loops, privilege brackets in arbitrary positions — and check:

* stdout, exit code, and kernel-visible side effects are unchanged by
  the transform;
* the transformed program ends with strictly fewer (or equal) permitted
  capabilities, and with none beyond the pinned set;
* adding ChronoPriv instrumentation on top changes nothing either.
"""

from hypothesis import given, settings, strategies as st

from repro.autopriv import transform_module
from repro.caps import CapabilitySet
from repro.chronopriv import ChronoRecorder, instrument_module
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.oskernel.setup import UID_USER, GID_USER, build_kernel
from repro.vm import Interpreter

# The privileged operations the generator can weave in: (capability,
# statement template).  All are safe to run in any order under the
# standard machine image with the capability raised.
PRIV_OPS = [
    ("CAP_DAC_READ_SEARCH", 'tmp = strlen(getspnam("user"));'),
    ("CAP_SETGID", "tmp = setegid({gid});"),
    ("CAP_KILL", "tmp = kill(getpid(), 0);"),
    ("CAP_CHOWN", 'tmp = chown("/home/user", {uid}, {gid});'),
    ("CAP_NET_BIND_SERVICE", "tmp = bind(socket(), 80 + depth);"),
]

statement_kinds = st.sampled_from(["compute", "priv", "if-priv", "loop", "print"])


@st.composite
def program_sources(draw):
    """A random PrivC main() using helpers, loops and privilege brackets."""
    n_ops = draw(st.integers(min_value=1, max_value=6))
    body_lines = []
    used_caps = set()
    counter = 0
    for _ in range(n_ops):
        kind = draw(statement_kinds)
        counter += 1
        if kind == "compute":
            iterations = draw(st.integers(min_value=1, max_value=6))
            body_lines.append(
                f"    i = 0; "
                f"while (i < {iterations}) {{ acc = acc * 3 + i; i = i + 1; }}"
            )
        elif kind in ("priv", "if-priv"):
            cap, template = draw(st.sampled_from(PRIV_OPS))
            used_caps.add(cap)
            statement = template.format(uid=UID_USER, gid=GID_USER)
            block = (
                f"    priv_raise({cap});\n"
                f"    {statement}\n"
                f"    priv_lower({cap});"
            )
            if kind == "if-priv":
                taken = draw(st.booleans())
                condition = "acc >= 0 || acc < 0" if taken else "acc != acc"
                block = (
                    f"    if ({condition}) {{\n{block}\n    }}"
                )
            body_lines.append(block)
        elif kind == "loop":
            body_lines.append(
                "    for (i = 0; i < 3; i = i + 1) { acc = acc + i * 7; }"
            )
        else:
            body_lines.append("    print_int(acc);")
    body = "\n".join(body_lines)
    source = f"""
    int depth;
    void main() {{
        int acc = 1;
        int i = 0;
        int tmp = 0;
        depth = 0;
        {body}
        print_int(acc);
        exit(0);
    }}
    """
    caps = CapabilitySet.of(*used_caps) if used_caps else CapabilitySet.empty()
    # Always grant one unused capability so the entry sweep has work.
    caps = caps.add("CapSysChroot")
    return source, caps


def execute(module, caps, chrono=False):
    kernel = build_kernel()
    process = kernel.spawn(UID_USER, GID_USER, permitted=caps)
    kernel.sys_prctl_lockdown(process.pid)
    vm = Interpreter(module, kernel, process)
    recorder = None
    if chrono:
        recorder = ChronoRecorder("prog", process)
        recorder.attach(vm, kernel)
    code = vm.run()
    fs_digest = tuple(
        (ino.owner, ino.group, ino.mode, ino.content)
        for ino in (kernel.fs.resolve(path) for path in ("/etc/shadow", "/home/user"))
    )
    return {
        "code": code,
        "stdout": vm.stdout,
        "fs": fs_digest,
        "ports": dict(kernel.bound_ports),
        "permitted": process.caps.permitted,
        "recorder": recorder,
    }


@settings(max_examples=50, deadline=None)
@given(program_sources())
def test_transform_preserves_behaviour(source_and_caps):
    source, caps = source_and_caps
    plain = compile_source(source)
    baseline = execute(plain, caps)

    transformed = compile_source(source)
    report = transform_module(transformed, caps)
    verify_module(transformed)
    result = execute(transformed, caps)

    assert result["code"] == baseline["code"]
    assert result["stdout"] == baseline["stdout"]
    assert result["fs"] == baseline["fs"]
    assert result["ports"] == baseline["ports"]


@settings(max_examples=50, deadline=None)
@given(program_sources())
def test_transform_shrinks_permitted_set(source_and_caps):
    source, caps = source_and_caps
    transformed = compile_source(source)
    report = transform_module(transformed, caps)
    result = execute(transformed, caps)
    # Everything except the pinned set must be gone by program exit.
    assert result["permitted"].issubset(report.pinned)
    # The unused capability dies at entry.
    assert "CapSysChroot" in report.entry_removed.describe()


@settings(max_examples=25, deadline=None)
@given(program_sources())
def test_instrumentation_preserves_behaviour_and_counts(source_and_caps):
    source, caps = source_and_caps
    plain = compile_source(source)
    baseline = execute(plain, caps)
    ground_truth = compile_source(source)
    kernel = build_kernel()
    process = kernel.spawn(UID_USER, GID_USER, permitted=caps)
    kernel.sys_prctl_lockdown(process.pid)
    vm = Interpreter(ground_truth, kernel, process)
    vm.run()
    expected_count = vm.executed_instructions

    instrumented = compile_source(source)
    instrument_module(instrumented)
    verify_module(instrumented)
    result = execute(instrumented, caps, chrono=True)
    assert result["stdout"] == baseline["stdout"]
    # Block-granular counting attributes a block at entry, so a program
    # that exit()s mid-block over-counts by the instructions it never
    # reached — bounded by the largest block (the paper's instrumentation
    # has the same granularity).  Never an under-count.
    total = result["recorder"].report().total
    largest_block = max(
        len(block.instructions)
        for function in instrumented.defined_functions()
        for block in function.blocks
    )
    assert expected_count <= total <= expected_count + largest_block
