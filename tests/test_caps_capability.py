"""Unit tests for the capability vocabulary."""

import pytest

from repro.caps import Capability, POWERFUL_CAPABILITIES, parse_capability


class TestCapabilityNumbers:
    def test_matches_kernel_numbering(self):
        # Spot-check against <linux/capability.h>.
        assert int(Capability.CAP_CHOWN) == 0
        assert int(Capability.CAP_DAC_OVERRIDE) == 1
        assert int(Capability.CAP_DAC_READ_SEARCH) == 2
        assert int(Capability.CAP_SETUID) == 7
        assert int(Capability.CAP_NET_BIND_SERVICE) == 10
        assert int(Capability.CAP_NET_RAW) == 13
        assert int(Capability.CAP_SYS_CHROOT) == 18
        assert int(Capability.CAP_AUDIT_READ) == 37

    def test_count_is_complete_for_linux_4x(self):
        assert len(Capability) == 38

    def test_values_are_distinct_and_contiguous(self):
        values = sorted(int(cap) for cap in Capability)
        assert values == list(range(38))


class TestCamelNames:
    def test_simple(self):
        assert Capability.CAP_CHOWN.camel_name == "CapChown"

    def test_multiword(self):
        assert Capability.CAP_DAC_READ_SEARCH.camel_name == "CapDacReadSearch"
        assert Capability.CAP_NET_BIND_SERVICE.camel_name == "CapNetBindService"

    def test_str_uses_camel_name(self):
        assert str(Capability.CAP_SETUID) == "CapSetuid"

    def test_camel_names_unique(self):
        names = {cap.camel_name for cap in Capability}
        assert len(names) == len(Capability)


class TestParseCapability:
    @pytest.mark.parametrize(
        "spelling",
        ["CAP_SETUID", "cap_setuid", "Cap_Setuid", "CapSetuid"],
    )
    def test_accepted_spellings(self, spelling):
        assert parse_capability(spelling) is Capability.CAP_SETUID

    def test_every_camel_name_roundtrips(self):
        for cap in Capability:
            assert parse_capability(cap.camel_name) is cap

    def test_every_kernel_name_roundtrips(self):
        for cap in Capability:
            assert parse_capability(cap.name) is cap

    @pytest.mark.parametrize("bad", ["", "CAP_NOPE", "Setuid", "cap", "CapSet uid"])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ValueError):
            parse_capability(bad)


class TestPowerfulCapabilities:
    def test_contains_the_papers_dangerous_set(self):
        for name in ("CAP_SETUID", "CAP_CHOWN", "CAP_FOWNER", "CAP_DAC_OVERRIDE"):
            assert Capability[name] in POWERFUL_CAPABILITIES

    def test_excludes_narrow_capabilities(self):
        assert Capability.CAP_NET_BIND_SERVICE not in POWERFUL_CAPABILITIES
        assert Capability.CAP_NET_RAW not in POWERFUL_CAPABILITIES
