"""Unit and property tests for CapabilitySet and CapabilityState."""

import pytest
from hypothesis import given, strategies as st

from repro.caps import Capability, CapabilitySet, CapabilityState

capability = st.sampled_from(list(Capability))
capsets = st.frozensets(capability, max_size=10).map(CapabilitySet)


class TestConstruction:
    def test_of_accepts_mixed_spellings(self):
        caps = CapabilitySet.of("CapSetuid", Capability.CAP_CHOWN, "CAP_FOWNER")
        assert Capability.CAP_SETUID in caps
        assert Capability.CAP_CHOWN in caps
        assert Capability.CAP_FOWNER in caps
        assert len(caps) == 3

    def test_empty_is_falsy(self):
        assert not CapabilitySet.empty()
        assert len(CapabilitySet.empty()) == 0

    def test_full_contains_everything(self):
        assert len(CapabilitySet.full()) == len(Capability)

    def test_duplicates_collapse(self):
        assert len(CapabilitySet.of("CapSetuid", "CAP_SETUID")) == 1

    @pytest.mark.parametrize("text", ["", "(empty)", "empty", "   "])
    def test_parse_empty_markers(self, text):
        assert CapabilitySet.parse(text) == CapabilitySet.empty()

    def test_parse_comma_list(self):
        caps = CapabilitySet.parse("CapSetuid, CapChown ,CapFowner")
        assert caps == CapabilitySet.of("CapSetuid", "CapChown", "CapFowner")

    def test_parse_describe_roundtrip(self):
        caps = CapabilitySet.of("CapDacReadSearch", "CapNetBindService")
        assert CapabilitySet.parse(caps.describe()) == caps


class TestAlgebra:
    def test_union_intersection_difference(self):
        a = CapabilitySet.of("CapSetuid", "CapChown")
        b = CapabilitySet.of("CapChown", "CapFowner")
        assert (a | b) == CapabilitySet.of("CapSetuid", "CapChown", "CapFowner")
        assert (a & b) == CapabilitySet.of("CapChown")
        assert (a - b) == CapabilitySet.of("CapSetuid")

    def test_add_remove_are_pure(self):
        original = CapabilitySet.of("CapSetuid")
        extended = original.add("CapChown")
        assert "CapChown" not in original
        assert "CapChown" in extended
        shrunk = extended.remove("CapSetuid")
        assert "CapSetuid" in extended
        assert "CapSetuid" not in shrunk

    def test_remove_missing_is_noop(self):
        caps = CapabilitySet.of("CapSetuid")
        assert caps.remove("CapChown") == caps

    def test_contains_accepts_strings(self):
        assert "CapSetuid" in CapabilitySet.of("CapSetuid")
        assert "CAP_SETUID" in CapabilitySet.of("CapSetuid")

    def test_iteration_is_sorted(self):
        caps = CapabilitySet.of("CapSetuid", "CapChown")  # 7, 0
        assert list(caps) == [Capability.CAP_CHOWN, Capability.CAP_SETUID]

    def test_describe_empty(self):
        assert CapabilitySet.empty().describe() == "(empty)"

    def test_describe_sorted_camel(self):
        caps = CapabilitySet.of("CapSetuid", "CapChown")
        assert caps.describe() == "CapChown,CapSetuid"


class TestMaskEncoding:
    def test_known_mask(self):
        caps = CapabilitySet.of("CapChown", "CapSetuid")  # bits 0 and 7
        assert caps.to_mask() == (1 << 0) | (1 << 7)

    def test_from_mask_rejects_unknown_bits(self):
        with pytest.raises(ValueError):
            CapabilitySet.from_mask(1 << 60)

    def test_from_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            CapabilitySet.from_mask(-1)

    @given(capsets)
    def test_mask_roundtrip(self, caps):
        assert CapabilitySet.from_mask(caps.to_mask()) == caps

    @given(capsets, capsets)
    def test_mask_of_union_is_or(self, a, b):
        assert (a | b).to_mask() == (a.to_mask() | b.to_mask())


class TestSetLaws:
    @given(capsets, capsets)
    def test_union_commutes(self, a, b):
        assert (a | b) == (b | a)

    @given(capsets, capsets, capsets)
    def test_union_associates(self, a, b, c):
        assert ((a | b) | c) == (a | (b | c))

    @given(capsets, capsets)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert not ((a - b) & b)

    @given(capsets)
    def test_subset_reflexive(self, a):
        assert a.issubset(a)

    @given(capsets, capsets)
    def test_hash_consistent_with_eq(self, a, b):
        if a == b:
            assert hash(a) == hash(b)


class TestCapabilityState:
    def test_effective_must_be_subset_of_permitted(self):
        with pytest.raises(ValueError):
            CapabilityState(
                effective=CapabilitySet.of("CapSetuid"),
                permitted=CapabilitySet.empty(),
            )

    def test_with_permitted_starts_lowered(self):
        state = CapabilityState.with_permitted(CapabilitySet.of("CapSetuid"))
        assert not state.effective
        assert "CapSetuid" in state.permitted

    def test_raise_moves_into_effective(self):
        state = CapabilityState.with_permitted(CapabilitySet.of("CapSetuid"))
        raised = state.raise_caps(CapabilitySet.of("CapSetuid"))
        assert "CapSetuid" in raised.effective

    def test_raise_non_permitted_fails(self):
        state = CapabilityState.with_permitted(CapabilitySet.of("CapSetuid"))
        with pytest.raises(PermissionError):
            state.raise_caps(CapabilitySet.of("CapChown"))

    def test_lower_only_touches_effective(self):
        state = CapabilityState.with_permitted(
            CapabilitySet.of("CapSetuid")
        ).raise_caps(CapabilitySet.of("CapSetuid"))
        lowered = state.lower_caps(CapabilitySet.of("CapSetuid"))
        assert "CapSetuid" not in lowered.effective
        assert "CapSetuid" in lowered.permitted

    def test_remove_is_irrevocable(self):
        state = CapabilityState.with_permitted(CapabilitySet.of("CapSetuid"))
        removed = state.remove_caps(CapabilitySet.of("CapSetuid"))
        assert "CapSetuid" not in removed.permitted
        with pytest.raises(PermissionError):
            removed.raise_caps(CapabilitySet.of("CapSetuid"))

    def test_remove_clears_effective_too(self):
        state = CapabilityState.with_permitted(
            CapabilitySet.of("CapSetuid", "CapChown")
        ).raise_caps(CapabilitySet.of("CapSetuid"))
        removed = state.remove_caps(CapabilitySet.of("CapSetuid"))
        assert "CapSetuid" not in removed.effective
        assert "CapChown" in removed.permitted

    def test_for_root_has_everything(self):
        state = CapabilityState.for_root()
        assert state.effective == CapabilitySet.full()
        assert state.permitted == CapabilitySet.full()

    @given(capsets, capsets)
    def test_permitted_never_grows(self, permitted, other):
        """The kernel invariant: no operation can add to the permitted set."""
        state = CapabilityState.with_permitted(permitted)
        for operation in (state.lower_caps, state.remove_caps):
            assert operation(other).permitted.issubset(permitted)
        raisable = other & permitted
        assert state.raise_caps(raisable).permitted == permitted

    @given(capsets, capsets)
    def test_effective_always_subset_of_permitted(self, permitted, raised):
        state = CapabilityState.with_permitted(permitted)
        result = state.raise_caps(raised & permitted)
        assert result.effective.issubset(result.permitted)
