"""Unit and property tests for process credentials."""

import pytest
from hypothesis import given, strategies as st

from repro.caps import Credentials

uids = st.integers(min_value=0, max_value=65535)


class TestConstruction:
    def test_for_user_sets_all_six(self):
        creds = Credentials.for_user(1000, 1000)
        assert creds.uid_triple == (1000, 1000, 1000)
        assert creds.gid_triple == (1000, 1000, 1000)

    def test_for_root(self):
        assert Credentials.for_root().uid_triple == (0, 0, 0)

    def test_supplementary_defaults_empty(self):
        assert Credentials.for_user(1, 1).supplementary == frozenset()

    def test_supplementary_frozen(self):
        creds = Credentials.for_user(1, 1, [4, 24])
        assert creds.supplementary == frozenset({4, 24})

    def test_frozen_dataclass(self):
        creds = Credentials.for_user(1, 1)
        with pytest.raises(Exception):
            creds.euid = 0


class TestRenderings:
    def test_describe_uids_order_is_r_e_s(self):
        creds = Credentials(ruid=1, euid=2, suid=3, rgid=4, egid=5, sgid=6)
        assert creds.describe_uids() == "1,2,3"
        assert creds.describe_gids() == "4,5,6"


class TestGroups:
    def test_groups_include_egid(self):
        creds = Credentials(ruid=1, euid=1, suid=1, rgid=2, egid=3, sgid=4)
        assert 3 in creds.groups()
        assert 2 not in creds.groups()

    def test_groups_include_supplementary(self):
        creds = Credentials.for_user(1, 1, [42])
        assert creds.groups() == frozenset({1, 42})


class TestUnprivilegedTransitions:
    def test_may_set_to_any_current_uid(self):
        creds = Credentials(ruid=1, euid=2, suid=3, rgid=0, egid=0, sgid=0)
        for uid in (1, 2, 3):
            assert creds.may_set_uid_unprivileged(uid)

    def test_may_not_set_to_foreign_uid(self):
        creds = Credentials.for_user(1000, 1000)
        assert not creds.may_set_uid_unprivileged(0)
        assert not creds.may_set_uid_unprivileged(1001)

    def test_gid_analogue(self):
        creds = Credentials(ruid=0, euid=0, suid=0, rgid=7, egid=8, sgid=9)
        assert creds.may_set_gid_unprivileged(8)
        assert not creds.may_set_gid_unprivileged(10)

    @given(uids, uids, uids)
    def test_current_ids_always_settable(self, r, e, s):
        creds = Credentials(ruid=r, euid=e, suid=s, rgid=0, egid=0, sgid=0)
        assert creds.may_set_uid_unprivileged(r)
        assert creds.may_set_uid_unprivileged(e)
        assert creds.may_set_uid_unprivileged(s)


class TestTransitions:
    def test_replace_is_pure(self):
        creds = Credentials.for_user(1000, 1000)
        changed = creds.replace(euid=0)
        assert creds.euid == 1000
        assert changed.euid == 0
        assert changed.ruid == 1000

    def test_with_all_uids(self):
        creds = Credentials.for_user(1000, 1000).with_all_uids(0)
        assert creds.uid_triple == (0, 0, 0)
        assert creds.gid_triple == (1000, 1000, 1000)

    def test_with_all_gids(self):
        creds = Credentials.for_user(1000, 1000).with_all_gids(42)
        assert creds.gid_triple == (42, 42, 42)
        assert creds.uid_triple == (1000, 1000, 1000)

    @given(uids, uids)
    def test_saved_id_switching_is_reversible(self, uid_a, uid_b):
        """The paper's §VII-E lesson relies on this credentials(7) rule:
        with identities planted in real and saved slots, the effective id
        can bounce between them with no privilege."""
        creds = Credentials(
            ruid=uid_a, euid=uid_a, suid=uid_b, rgid=0, egid=0, sgid=0
        )
        assert creds.may_set_uid_unprivileged(uid_b)
        switched = creds.replace(euid=uid_b)
        assert switched.may_set_uid_unprivileged(uid_a)
