"""Fleet telemetry capsules: worker collection, merge, engine accounting.

The contract under test (docs/OBSERVABILITY.md): pool workers run their
searches under private collectors and return compact picklable capsules;
the parent merges them — clock-skew-normalized spans with a ``worker``
attribute, additively-merged metrics with per-worker labeled variants,
profile subtrees grafted under ``("engine", "worker:N", "execute")``,
re-sequenced audit records — and verdicts stay bit-identical with
capsules on versus off.
"""

import dataclasses
import pickle

import pytest

from repro.rewriting import SearchBudget
from repro.rosa import ParallelPolicy, QueryEngine, QueryRequest
from repro.rosa.dsl import DslQuerySpec, parse_query
from repro.telemetry import (
    CAPSULE_SCHEMA_VERSION,
    CapsuleCollector,
    CapsuleRequest,
    ManualClock,
    MetricsRegistry,
    Profiler,
    Telemetry,
    Tracer,
    merge_capsule,
    normalize_worker,
    worker_index,
)
from repro.telemetry.audit import SyscallAuditTrail

pytestmark = pytest.mark.telemetry

BUDGET = SearchBudget(max_states=50_000, max_seconds=30.0)

QUERY_TEMPLATE = """
search in UNIX :
  < 1 : Process | euid : 10 , ruid : {ruid} , suid : 12 ,
                  egid : 10 , rgid : 11 , sgid : 12 ,
                  state : run , rdfset : empty , wrfset : empty >
  < 2 : Dir | name : "/etc" , perms : rwxrwxrwx ,
              inode : 3 , owner : 40 , group : 41 >
  < 3 : File | name : "/etc/passwd" , perms : --------- ,
               owner : 40 , group : 41 >
  < 4 : User | uid : 10 >
  open(1, 3, r, empty)
  setuid(1, -1, CapSetuid)
  chown(1, -1, -1, 41, CapChown)
  chmod(1, -1, rwxrwxrwx, empty)
=>* such that 3 in rdfset(1) .
"""


def distinct_requests(count=4):
    """``count`` distinct vulnerable queries, each with a picklable spec."""
    requests = []
    for i in range(count):
        text = QUERY_TEMPLATE.format(ruid=20 + i)
        name = f"q{i}"
        requests.append(
            QueryRequest(parse_query(text, name=name), spec=DslQuerySpec(text, name))
        )
    return requests


@dataclasses.dataclass(frozen=True)
class FakeSample:
    states_explored: int
    states_seen: int = 0
    frontier: int = 1
    depth: int = 1
    elapsed: float = 0.0
    states_per_second: float = 0.0
    budget_used: float = 0.0


class TestWorkerIdentity:
    def test_pool_thread_names_keep_their_slot(self):
        assigned = {}
        assert worker_index("ThreadPoolExecutor-0_3", assigned) == 3
        assert worker_index("ThreadPoolExecutor-0_0", assigned) == 0
        # Stable on re-query.
        assert worker_index("ThreadPoolExecutor-0_3", assigned) == 3

    def test_main_thread_normalizes_to_integer_id(self):
        # Regression: threads whose name lacks the pool suffix used to
        # produce "worker:MainThread"; every name must yield worker:N.
        assigned = {}
        assert normalize_worker("MainThread", assigned) == "worker:0"
        assert normalize_worker("MainThread", assigned) == "worker:0"
        assert normalize_worker("my-custom-thread", assigned) == "worker:1"

    def test_pool_slot_collision_falls_back_to_first_free(self):
        assigned = {"pid:4242": 3}
        assert worker_index("ThreadPoolExecutor-0_3", assigned) == 0
        assert assigned["ThreadPoolExecutor-0_3"] == 0

    def test_process_worker_names(self):
        assigned = {}
        assert normalize_worker("pid:100", assigned) == "worker:0"
        assert normalize_worker("pid:200", assigned) == "worker:1"
        assert normalize_worker("pid:100", assigned) == "worker:0"


class TestCapsuleCollector:
    def test_capsule_is_plain_picklable_data(self):
        clock = ManualClock(start=5.0, tick=0.5)
        collector = CapsuleCollector(
            CapsuleRequest(trace=True, samples=True, trace_id="abc"),
            clock=clock,
            worker="pid:99",
        )
        with collector.tracer.span("rosa.query", query="q"):
            pass
        collector.metrics.counter("x").inc(3)
        capsule = collector.capsule()
        clone = pickle.loads(pickle.dumps(capsule))
        assert clone.schema == CAPSULE_SCHEMA_VERSION
        assert clone.worker == "pid:99"
        assert clone.trace_id == "abc"
        assert [span["name"] for span in clone.spans] == ["rosa.query"]
        assert clone.metrics["x"]["value"] == 3
        assert clone.execute_seconds == capsule.execute_seconds > 0.0

    def test_flags_gate_what_is_collected(self):
        collector = CapsuleCollector(CapsuleRequest(trace=False))
        assert not collector.tracer.enabled
        assert collector.profiler is None
        assert collector.audit is None
        assert collector.progress is None
        capsule = collector.capsule()
        assert capsule.spans == [] and capsule.samples == []

    def test_sample_decimation_keeps_endpoints_and_bound(self):
        collector = CapsuleCollector(
            CapsuleRequest(trace=False, samples=True, max_samples=8)
        )
        for i in range(1000):
            collector.on_sample(FakeSample(states_explored=i))
        capsule = collector.capsule()
        assert len(capsule.samples) <= 8
        assert capsule.samples[0]["states_explored"] == 0
        assert capsule.samples[-1]["states_explored"] == 999

    def test_observe_report_mirrors_engine_counters(self):
        collector = CapsuleCollector(CapsuleRequest(trace=False))

        class Stats:
            symmetry_hits = 7
            por_pruned = 2

        class Report:
            states_explored = 41
            stats = Stats()

        collector.observe_report(Report())
        snapshot = collector.capsule().metrics
        assert snapshot["rosa.worker.queries"]["value"] == 1
        assert snapshot["rosa.worker.states_explored"]["value"] == 41
        assert snapshot["rosa.reduction.symmetry_hits"]["value"] == 7
        assert snapshot["rosa.reduction.por_pruned"]["value"] == 2


class TestMergeCapsule:
    def build_capsule(self, **overrides):
        worker_clock = ManualClock(start=100.0, tick=0.25)
        collector = CapsuleCollector(
            CapsuleRequest(trace=True, trace_id="key123"),
            clock=worker_clock,
            worker="pid:7",
        )
        with collector.tracer.span("rosa.query", query="q"):
            pass
        capsule = collector.capsule()
        return dataclasses.replace(capsule, **overrides) if overrides else capsule

    def test_spans_shift_into_the_parent_clock_domain(self):
        capsule = self.build_capsule()
        parent = Tracer(clock=ManualClock(start=0.0, tick=0.1))
        merged = merge_capsule(
            capsule, worker="worker:2", tracer=parent, anchor=50.0
        )
        assert merged
        (span,) = parent.finished
        offset = 50.0 - capsule.clock_end
        assert span.start == pytest.approx(100.25 + offset)
        assert span.end == pytest.approx(100.5 + offset)
        assert span.end <= 50.0
        assert span.attributes["worker"] == "worker:2"
        assert span.attributes["trace_id"] == "key123"
        assert span.attributes["query"] == "q"

    def test_thread_mode_merges_unshifted(self):
        capsule = self.build_capsule()
        parent = Tracer(clock=ManualClock(start=0.0, tick=0.1))
        assert merge_capsule(capsule, worker="worker:0", tracer=parent)
        (span,) = parent.finished
        assert span.start == pytest.approx(100.25)

    def test_schema_skew_is_skipped_and_counted(self):
        capsule = self.build_capsule(schema=CAPSULE_SCHEMA_VERSION + 1)
        parent = Tracer(clock=ManualClock())
        metrics = MetricsRegistry()
        assert not merge_capsule(
            capsule, worker="worker:0", tracer=parent, metrics=metrics
        )
        assert parent.finished == []
        assert metrics.counter("rosa.capsule.schema_skew").value == 1
        assert "rosa.capsule.merged" not in metrics.snapshot()

    def test_metrics_merge_additively_with_worker_labels(self):
        collector = CapsuleCollector(CapsuleRequest(trace=False))
        collector.metrics.counter("rosa.worker.states_explored").inc(10)
        collector.metrics.histogram("rosa.step").observe(2.0)
        collector.metrics.histogram("rosa.step").observe(4.0)
        capsule = collector.capsule()
        metrics = MetricsRegistry()
        metrics.counter("rosa.worker.states_explored").inc(5)
        assert merge_capsule(capsule, worker="worker:3", metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["rosa.worker.states_explored"]["value"] == 15
        assert snapshot['rosa.worker.states_explored{worker="3"}']["value"] == 10
        assert snapshot["rosa.step"]["count"] == 2
        assert snapshot['rosa.step{worker="3"}']["mean"] == pytest.approx(3.0)
        assert metrics.counter("rosa.capsule.merged").value == 1

    def test_profile_grafts_under_worker_execute_with_overhead_remainder(self):
        worker_clock = ManualClock(start=0.0, tick=0.0)
        collector = CapsuleCollector(
            CapsuleRequest(trace=False, profile=True), clock=worker_clock
        )
        collector.profiler.account(("rosa.search",), 0.6)
        collector.profiler.account(("rosa.search", "rule.setuid"), 0.5)
        capsule = collector.capsule()
        capsule = dataclasses.replace(capsule, clock_start=0.0, clock_end=1.0)
        parent = Profiler(clock=ManualClock())
        assert merge_capsule(capsule, worker="worker:1", profiler=parent)
        under = ("engine", "worker:1", "execute")
        assert parent.records[under + ("rosa.search",)].seconds == pytest.approx(0.6)
        assert parent.records[
            under + ("rosa.search", "rule.setuid")
        ].seconds == pytest.approx(0.5)
        # execute window (1.0s) minus rooted profile time (0.6s) becomes
        # the derived remainder, so worker attribution stays complete.
        assert parent.records[under + ("capsule.overhead",)].seconds == (
            pytest.approx(0.4)
        )
        parent.account(under, 1.0)
        workers = parent.to_report()["workers"]
        assert workers["worker:1"]["attributed_fraction"] == pytest.approx(1.0)

    def test_audit_records_resequence_and_count_source_drops(self):
        collector = CapsuleCollector(CapsuleRequest(trace=False, audit=True))
        collector.audit.record("open", pid=1, args=("/etc/shadow",))
        collector.audit.record("setuid", pid=1, args=(0,), errno=1, error="EPERM")
        capsule = collector.capsule()
        capsule = dataclasses.replace(capsule, audit_total=5)  # 3 evicted upstream
        metrics = MetricsRegistry()
        parent = SyscallAuditTrail(capacity=16, metrics=metrics)
        assert merge_capsule(capsule, worker="worker:0", audit=parent)
        assert [record.syscall for record in parent.records] == ["open", "setuid"]
        assert [record.seq for record in parent.records] == [1, 2]
        assert parent.total == 5
        assert parent.dropped == 3
        assert metrics.gauge("kernel.audit.dropped").value == 3


class TestAuditDroppedGauge:
    def test_publish_refreshes_a_stale_gauge(self):
        # The gauge only updates on record append; direct ring
        # manipulation (or a merge into a full ring) leaves it stale
        # until an exporter republishes.
        metrics = MetricsRegistry()
        trail = SyscallAuditTrail(capacity=2, metrics=metrics)
        for i in range(3):
            trail.record("open", pid=1, args=(i,))
        assert metrics.gauge("kernel.audit.dropped").value == 1
        trail._ring.popleft()
        assert metrics.gauge("kernel.audit.dropped").value == 1  # stale
        assert trail.publish_dropped() == 2
        assert metrics.gauge("kernel.audit.dropped").value == 2

    def test_clear_republishes(self):
        metrics = MetricsRegistry()
        trail = SyscallAuditTrail(capacity=2, metrics=metrics)
        for i in range(3):
            trail.record("open", pid=1, args=(i,))
        trail.clear()
        assert metrics.gauge("kernel.audit.dropped").value == 3


class TestEngineFleet:
    def fleet_engine(self, mode, capsules=True, workers=4, audit=True):
        telemetry = Telemetry.enabled(audit=audit)
        profiler = Profiler()
        engine = QueryEngine(
            budget=BUDGET,
            cache=None,
            parallel=ParallelPolicy(mode=mode, max_workers=workers),
            telemetry=telemetry,
            profiler=profiler,
            capsules=capsules,
        )
        return engine, telemetry, profiler

    def test_process_pool_merges_worker_capsules(self):
        engine, telemetry, profiler = self.fleet_engine("process")
        requests = distinct_requests(4)
        reports = engine.run_queries(requests)
        assert [r.verdict.value for r in reports] == ["vulnerable"] * 4
        workers = {
            span.attributes["worker"]
            for span in telemetry.tracer.finished
            if "worker" in span.attributes
        }
        assert len(workers) >= 2 and all(w.startswith("worker:") for w in workers)
        trace_ids = {
            span.attributes.get("trace_id")
            for span in telemetry.tracer.finished
            if "worker" in span.attributes
        }
        assert len(trace_ids) == 4  # one canonical key per distinct query
        fleet = engine.fleet_stats()
        assert fleet["capsule_schema"] == CAPSULE_SCHEMA_VERSION
        assert fleet["mode"] == "process"
        assert sum(stats["tasks"] for stats in fleet["workers"].values()) == 4
        assert all(
            name.startswith("pid:")
            for stats in fleet["workers"].values()
            for name in stats["names"]
        )

    def test_process_pool_queue_wait_and_execute_accounting(self):
        # Satellite: the scheduling thread must split each worker's
        # submit-to-done window into queue_wait + execute, per worker,
        # instead of the old lump "worker:pool inflight".
        engine, _, profiler = self.fleet_engine("process")
        engine.run_queries(distinct_requests(4))
        stacks = set(profiler.records)
        execute = {s for s in stacks if len(s) == 3 and s[2] == "execute"}
        waits = {s for s in stacks if len(s) == 3 and s[2] == "queue_wait"}
        assert execute and waits
        assert all(s[0] == "engine" and s[1].startswith("worker:") for s in execute)
        assert ("engine", "worker:pool", "inflight") not in stacks
        report = profiler.to_report()
        assert report["workers"]
        for stats in report["workers"].values():
            assert stats["attributed_fraction"] >= 0.95

    def test_process_pool_without_capsules_keeps_inflight_accounting(self):
        engine, telemetry, profiler = self.fleet_engine("process", capsules=False)
        reports = engine.run_queries(distinct_requests(4))
        assert [r.verdict.value for r in reports] == ["vulnerable"] * 4
        assert ("engine", "worker:pool", "inflight") in profiler.records
        assert engine.fleet_stats() == {}
        # The synthetic per-query span is still recorded.
        names = [span.name for span in telemetry.tracer.finished]
        assert names.count("rosa.query") == 4

    def test_capsules_on_off_verdict_parity(self):
        requests = distinct_requests(4)
        engine_on, _, _ = self.fleet_engine("process")
        engine_off = QueryEngine(
            budget=BUDGET,
            cache=None,
            parallel=ParallelPolicy(mode="process", max_workers=4),
            capsules=False,
        )
        on = engine_on.run_queries(requests)
        off = engine_off.run_queries(requests)
        assert [r.verdict.value for r in on] == [r.verdict.value for r in off]
        assert [list(r.witness) for r in on] == [list(r.witness) for r in off]
        assert [r.states_explored for r in on] == [r.states_explored for r in off]
        assert [r.states_seen for r in on] == [r.states_seen for r in off]

    def test_thread_pool_worker_ids_are_normalized(self):
        engine, telemetry, profiler = self.fleet_engine(
            "thread", workers=2, audit=False
        )
        requests = [QueryRequest(request.query) for request in distinct_requests(4)]
        reports = engine.run_queries(requests)
        assert [r.verdict.value for r in reports] == ["vulnerable"] * 4
        fleet = engine.fleet_stats()
        assert fleet["mode"] == "thread"
        assert set(fleet["workers"]) <= {"worker:0", "worker:1"}
        worker_frames = {
            stack[1]
            for stack in profiler.records
            if len(stack) == 3 and stack[0] == "engine"
        }
        assert worker_frames <= {"worker:0", "worker:1"}
        # Merged spans carry the normalized id too.
        span_workers = {
            span.attributes["worker"]
            for span in telemetry.tracer.finished
            if "worker" in span.attributes
        }
        assert span_workers <= {"worker:0", "worker:1"} and span_workers

    def test_worker_ids_stable_across_batches(self):
        engine, _, _ = self.fleet_engine("thread", workers=2, audit=False)
        engine.run_queries(
            [QueryRequest(request.query) for request in distinct_requests(2)]
        )
        first = dict(engine._worker_ids)
        engine.run_queries(
            [QueryRequest(request.query) for request in distinct_requests(2)]
        )
        for name, index in first.items():
            assert engine._worker_ids[name] == index

    def test_dark_engine_requests_no_capsules(self):
        engine = QueryEngine(budget=BUDGET, cache=None)
        assert engine._capsule_request(None) is None
        engine_off = QueryEngine(budget=BUDGET, cache=None, capsules=False)
        assert engine_off._capsule_request(object()) is None
