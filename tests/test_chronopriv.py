"""ChronoPriv: instrumentation correctness and phase accounting."""

import pytest

from repro.caps import CapabilitySet
from repro.chronopriv import ChronoRecorder, instrument_module
from repro.frontend import compile_source
from repro.ir import Call, Unreachable, verify_module
from repro.oskernel.setup import build_kernel, GID_USER, UID_USER
from repro.vm import Interpreter

SIMPLE = """
void main() {
    int i;
    int total = 0;
    for (i = 0; i < 10; i = i + 1) { total = total + i; }
    print_int(total);
}
"""

# Counting happens at basic-block granularity, so a phase is only
# observable if at least one block *starts* inside it; the control flow
# after each transition below guarantees that.
PHASED = """
void main() {
    priv_raise(CAP_DAC_READ_SEARCH);
    str h = getspnam("user");
    priv_lower(CAP_DAC_READ_SEARCH);
    priv_remove(CAP_DAC_READ_SEARCH);
    int i;
    int x = 0;
    for (i = 0; i < 20; i = i + 1) { x = x + i; }
    priv_raise(CAP_SETUID);
    int rc = setuid(0);
    priv_lower(CAP_SETUID);
    priv_remove(CAP_SETUID);
    if (rc == 0) { x = x + 1; }
    print_int(x);
}
"""


def execute(module, caps=(), program="prog"):
    kernel = build_kernel()
    process = kernel.spawn(UID_USER, GID_USER, permitted=CapabilitySet.of(*caps))
    kernel.sys_prctl_lockdown(process.pid)
    vm = Interpreter(module, kernel, process)
    recorder = ChronoRecorder(program, process)
    recorder.attach(vm, kernel)
    code = vm.run()
    return recorder.report(), vm, code


class TestInstrumentationPass:
    def test_every_block_gets_a_counter(self):
        module = compile_source(SIMPLE)
        report = instrument_module(module)
        main = module.get_function("main")
        for block in main.blocks:
            first = block.instructions[0]
            assert isinstance(first, Call)
            assert first.direct_target.name == "__chrono_count"
        assert report.blocks_instrumented == len(main.blocks)

    def test_idempotent(self):
        module = compile_source(SIMPLE)
        first = instrument_module(module)
        second = instrument_module(module)
        assert second.blocks_instrumented == 0
        verify_module(module)

    def test_counts_exclude_unreachable(self):
        from repro.ir import IRBuilder, Module, VOID

        module = Module("m")
        function = module.add_function("main", VOID, [])
        block = function.add_block("entry")
        builder = IRBuilder(block)
        builder.add(1, 2)
        builder.unreachable()
        report = instrument_module(module)
        # add + unreachable: only the add is countable.
        assert report.instructions_counted == 1

    def test_static_totals_accumulate(self):
        module = compile_source(SIMPLE)
        report = instrument_module(module)
        assert report.per_function["main"] == report.instructions_counted
        assert report.instructions_counted > 0


class TestCountingAccuracy:
    """The recorder's total must equal the uninstrumented execution count."""

    @pytest.mark.parametrize(
        "source,caps",
        [
            (SIMPLE, ()),
            (PHASED, ("CapDacReadSearch", "CapSetuid")),
        ],
    )
    def test_total_matches_ground_truth(self, source, caps):
        # Ground truth: run the *uninstrumented* module and use the VM's
        # own retired-instruction counter.
        plain = compile_source(source)
        kernel = build_kernel()
        process = kernel.spawn(UID_USER, GID_USER, permitted=CapabilitySet.of(*caps))
        kernel.sys_prctl_lockdown(process.pid)
        vm_plain = Interpreter(plain, kernel, process)
        vm_plain.run()
        ground_truth = vm_plain.executed_instructions

        instrumented = compile_source(source)
        instrument_module(instrumented)
        report, vm_instr, _ = execute(instrumented, caps)
        assert report.total == ground_truth

    def test_instrumentation_overhead_is_one_call_per_block_execution(self):
        plain = compile_source(SIMPLE)
        kernel = build_kernel()
        process = kernel.spawn(UID_USER, GID_USER)
        vm_plain = Interpreter(plain, kernel, process)
        vm_plain.run()

        instrumented = compile_source(SIMPLE)
        instrument_module(instrumented)
        report, vm_instr, _ = execute(instrumented)
        overhead = vm_instr.executed_instructions - vm_plain.executed_instructions
        assert overhead > 0
        # Every overhead instruction is one __chrono_count call; the
        # number of calls equals the number of block executions, and each
        # block execution contributed >= 1 counted instruction.
        assert overhead <= report.total


class TestPhases:
    def test_single_phase_without_privileges(self):
        module = compile_source(SIMPLE)
        instrument_module(module)
        report, _, _ = execute(module)
        assert len(report.phases) == 1
        phase = report.phases[0]
        assert phase.privileges == CapabilitySet.empty()
        assert phase.percent == pytest.approx(100.0)

    def test_phase_transitions_on_remove_and_setuid(self):
        module = compile_source(PHASED)
        instrument_module(module)
        report, _, _ = execute(module, ("CapDacReadSearch", "CapSetuid"))
        descriptions = [
            (phase.privileges.describe(), phase.uids) for phase in report.phases
        ]
        assert descriptions == [
            ("CapDacReadSearch,CapSetuid", (1000, 1000, 1000)),
            ("CapSetuid", (1000, 1000, 1000)),
            ("(empty)", (0, 0, 0)),
        ]

    def test_percentages_sum_to_100(self):
        module = compile_source(PHASED)
        instrument_module(module)
        report, _, _ = execute(module, ("CapDacReadSearch", "CapSetuid"))
        assert sum(phase.percent for phase in report.phases) == pytest.approx(100.0)

    def test_phase_names_numbered_in_order(self):
        module = compile_source(PHASED)
        instrument_module(module)
        report, _, _ = execute(module, ("CapDacReadSearch", "CapSetuid"), program="demo")
        assert [phase.name for phase in report.phases] == [
            "demo_priv1",
            "demo_priv2",
            "demo_priv3",
        ]

    def test_reentering_phase_accumulates(self):
        source = """
        void main() {
            int i;
            for (i = 0; i < 3; i = i + 1) {
                priv_raise(CAP_SETGID);
                setegid(1000);
                priv_lower(CAP_SETGID);
            }
        }
        """
        module = compile_source(source)
        instrument_module(module)
        report, _, _ = execute(module, ("CapSetgid",))
        # Raising/lowering does not change the *permitted* set, so all
        # iterations land in one phase.
        assert len(report.phases) == 1

    def test_phase_lookup_by_name(self):
        module = compile_source(PHASED)
        instrument_module(module)
        report, _, _ = execute(module, ("CapDacReadSearch", "CapSetuid"), program="p")
        assert report.phase("p_priv2").privileges == CapabilitySet.of("CapSetuid")
        with pytest.raises(KeyError):
            report.phase("p_priv99")

    def test_render_contains_all_rows(self):
        module = compile_source(PHASED)
        instrument_module(module)
        report, _, _ = execute(module, ("CapDacReadSearch", "CapSetuid"), program="p")
        text = report.render()
        for phase in report.phases:
            assert phase.name in text
        assert "total" in text
