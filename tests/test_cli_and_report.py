"""The command-line interface and the report exporters."""

import csv
import io
import json

import pytest

from repro.cli import main
from repro.core import PrivAnalyzer
from repro.core.report import (
    analysis_to_dict,
    refactoring_hints,
    summary_table,
    to_csv,
    to_json,
    to_markdown,
)
from repro.programs import spec_by_name


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def ping_analysis():
    return PrivAnalyzer().analyze(spec_by_name("ping"))


@pytest.fixture(scope="module")
def su_analysis():
    return PrivAnalyzer().analyze(spec_by_name("su"))


class TestExporters:
    def test_dict_structure(self, ping_analysis):
        data = analysis_to_dict(ping_analysis)
        assert data["program"] == "ping"
        assert data["invulnerable_window"] == 1.0
        assert len(data["phases"]) == 3
        assert data["phases"][0]["verdicts"] == {
            "1": "invulnerable", "2": "invulnerable",
            "3": "invulnerable", "4": "invulnerable",
        }

    def test_json_parses(self, ping_analysis):
        data = json.loads(to_json(ping_analysis))
        assert data["program"] == "ping"

    def test_markdown_shape(self, su_analysis):
        text = to_markdown(su_analysis)
        assert text.startswith("### su")
        assert "| su_priv1 |" in text
        assert "✓" in text and "✗" in text

    def test_csv_rows(self, ping_analysis, su_analysis):
        rows = list(csv.reader(io.StringIO(to_csv([ping_analysis, su_analysis]))))
        header, *body = rows
        assert header[0] == "program"
        assert len(body) == 3 + 6  # ping phases + su phases
        assert body[0][0] == "ping"
        assert body[-1][0] == "su"

    def test_summary_table(self, ping_analysis, su_analysis):
        text = summary_table([ping_analysis, su_analysis])
        assert "ping" in text and "su" in text
        assert "100.0%" in text  # ping all-clear


class TestRefactoringHints:
    def test_su_gets_credentials_hint(self, su_analysis):
        hints = refactoring_hints(su_analysis)
        assert any("changing credentials early" in hint for hint in hints)
        assert any("CapSetuid" in hint for hint in hints)

    def test_ping_gets_no_powerful_cap_hint(self, ping_analysis):
        hints = refactoring_hints(ping_analysis)
        assert not any("changing credentials early" in hint for hint in hints)

    def test_root_owned_phase_triggers_special_user_hint(self):
        analysis = PrivAnalyzer().analyze(spec_by_name("passwd"))
        hints = refactoring_hints(analysis)
        # passwd's empty-set phase runs with euid 0 and remains vulnerable.
        assert any("special user" in hint for hint in hints)


class TestCli:
    def test_list(self):
        code, out = run_cli("list")
        assert code == 0
        for name in ("passwd", "ping", "sshd", "su", "thttpd"):
            assert name in out

    def test_analyze_builtin_table(self):
        code, out = run_cli("analyze", "ping")
        assert code == 0
        assert "ping_priv1" in out
        assert "all-clear" in out

    def test_analyze_markdown(self):
        code, out = run_cli("analyze", "ping", "--format", "markdown")
        assert code == 0
        assert out.startswith("### ping")

    def test_analyze_json(self):
        code, out = run_cli("analyze", "ping", "--format", "json")
        assert json.loads(out)["program"] == "ping"

    def test_analyze_csv(self):
        code, out = run_cli("analyze", "ping", "--format", "csv")
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0][0] == "program"
        assert len(rows) == 4

    def test_analyze_privc_file(self, tmp_path):
        source = """
        void main() {
            priv_raise(CAP_DAC_READ_SEARCH);
            str h = getspnam("user");
            priv_lower(CAP_DAC_READ_SEARCH);
            print_int(strlen(h));
            exit(0);
        }
        """
        path = tmp_path / "agent.privc"
        path.write_text(source)
        code, out = run_cli(
            "analyze", str(path), "--caps", "CapDacReadSearch"
        )
        assert code == 0
        assert "agent_priv1" in out

    def test_analyze_privc_requires_caps(self, tmp_path):
        path = tmp_path / "agent.privc"
        path.write_text("void main() { }")
        with pytest.raises(SystemExit, match="--caps"):
            run_cli("analyze", str(path))

    def test_analyze_unknown_program(self):
        with pytest.raises(SystemExit, match="neither a built-in"):
            run_cli("analyze", "no-such-program")

    def test_analyze_with_optimize_and_callgraph(self):
        code, out = run_cli(
            "analyze", "ping", "--optimize", "--callgraph", "type-matched"
        )
        assert code == 0

    def test_hints(self):
        code, out = run_cli("hints", "su")
        assert code == 0
        assert "Refactoring hints for su" in out

    def test_rosa_query_file_vulnerable_exit_code(self, tmp_path):
        query = """
        < 1 : Process | euid : 0 , ruid : 0 , suid : 0 ,
                        egid : 0 , rgid : 0 , sgid : 0 >
        < 3 : File | name : "f" , perms : rw------- , owner : 0 , group : 0 >
        open(1, 3, r, empty)
        =>* such that 3 in rdfset(1) .
        """
        path = tmp_path / "q.rosa"
        path.write_text(query)
        code, out = run_cli("rosa", str(path))
        assert code == 1  # vulnerable -> nonzero, CI-friendly
        assert "vulnerable" in out

    def test_rosa_query_file_safe_exit_code(self, tmp_path):
        query = """
        < 1 : Process | euid : 5 , ruid : 5 , suid : 5 ,
                        egid : 5 , rgid : 5 , sgid : 5 >
        < 3 : File | name : "f" , perms : --------- , owner : 0 , group : 0 >
        open(1, 3, r, empty)
        =>* such that 3 in rdfset(1) .
        """
        path = tmp_path / "q.rosa"
        path.write_text(query)
        code, out = run_cli("rosa", str(path))
        assert code == 0
        assert "invulnerable" in out

    def test_shipped_example_query(self):
        code, out = run_cli("rosa", "examples/queries/figure2.rosa")
        assert code == 1
        assert "chown -> chmod -> open" in out

    def test_table5(self):
        code, out = run_cli("table5")
        assert code == 0
        assert "passwdRef_priv1" in out
        assert "suRef_priv1" in out

    def test_rosa_explain_flag(self, tmp_path):
        query = """
        < 1 : Process | euid : 0 , ruid : 0 , suid : 0 ,
                        egid : 0 , rgid : 0 , sgid : 0 >
        < 3 : File | name : "f" , perms : rw------- , owner : 0 , group : 0 >
        open(1, 3, r, empty)
        =>* such that 3 in rdfset(1) .
        """
        path = tmp_path / "q.rosa"
        path.write_text(query)
        code, out = run_cli("rosa", str(path), "--explain")
        assert code == 1
        assert "step 1: open" in out
        assert "compromised state reached." in out
