"""The four modeled attacks: per-capability verdict matrix.

This is the unit-level ground truth behind Tables III and V: for each
(capability set, credential) combination the paper's analysis hinges on,
the attack queries must produce the documented verdict.
"""

import pytest

from repro.caps import CapabilitySet
from repro.core.attacks import (
    ALL_ATTACKS,
    ATTACKS_BY_ID,
    BIND_PRIVILEGED_PORT,
    KILL_SSHD,
    READ_DEV_MEM,
    WRITE_DEV_MEM,
)
from repro.rosa import check

#: A generous syscall surface (what a shadow-utils-style program exposes).
FULL_SURFACE = frozenset(
    {
        "open_read", "open_write", "setuid", "seteuid", "setresuid",
        "setgid", "setegid", "setresgid", "kill", "chmod", "fchmod",
        "chown", "fchown", "unlink", "rename", "socket", "bind", "connect",
    }
)

USER = (1000, 1000, 1000)
ROOT = (0, 0, 0)


def verdict(attack, caps, uids=USER, gids=USER, surface=FULL_SURFACE):
    query = attack.build_query(
        CapabilitySet.parse(caps), uids, gids, surface
    )
    return check(query).verdict.value


class TestTableI:
    def test_four_attacks_defined(self):
        assert [attack.attack_id for attack in ALL_ATTACKS] == [1, 2, 3, 4]

    def test_descriptions_match_paper(self):
        assert "dev/mem" in READ_DEV_MEM.description
        assert "masquerade" in BIND_PRIVILEGED_PORT.description
        assert "SIGKILL" in KILL_SSHD.description

    def test_lookup_by_id(self):
        assert ATTACKS_BY_ID[3] is BIND_PRIVILEGED_PORT


class TestReadDevMem:
    def test_empty_caps_regular_user_safe(self):
        assert verdict(READ_DEV_MEM, "(empty)") == "invulnerable"

    def test_cap_dac_read_search_reads(self):
        assert verdict(READ_DEV_MEM, "CapDacReadSearch") == "vulnerable"

    def test_cap_dac_override_reads(self):
        assert verdict(READ_DEV_MEM, "CapDacOverride") == "vulnerable"

    def test_cap_setuid_reads_via_root_identity(self):
        assert verdict(READ_DEV_MEM, "CapSetuid") == "vulnerable"

    def test_cap_setgid_reads_via_kmem_group(self):
        """/dev/mem is root:kmem 640 — setgid(kmem) grants group read.
        This is why Table V's refactored rows with only CapSetgid keep a
        ✓ in the read column."""
        assert verdict(READ_DEV_MEM, "CapSetgid") == "vulnerable"

    def test_cap_chown_alone_takes_ownership(self):
        assert verdict(READ_DEV_MEM, "CapChown") == "vulnerable"

    def test_cap_fowner_alone_chmods_open(self):
        assert verdict(READ_DEV_MEM, "CapFowner") == "vulnerable"

    def test_unrelated_caps_safe(self):
        assert verdict(READ_DEV_MEM, "CapNetBindService,CapSysChroot,CapNetRaw") == "invulnerable"

    def test_root_identity_reads_without_caps(self):
        """euid 0 owns /dev/mem: DAC suffices (paper §VII-D1 prose)."""
        assert verdict(READ_DEV_MEM, "(empty)", uids=ROOT) == "vulnerable"

    def test_etc_identity_cannot_read(self):
        assert verdict(READ_DEV_MEM, "(empty)", uids=(998, 998, 1000)) == "invulnerable"

    def test_surface_matters_no_open_no_attack(self):
        surface = FULL_SURFACE - {"open_read", "open_write"}
        assert (
            verdict(READ_DEV_MEM, "CapDacOverride", surface=surface)
            == "invulnerable"
        )


class TestWriteDevMem:
    def test_cap_dac_read_search_cannot_write(self):
        assert verdict(WRITE_DEV_MEM, "CapDacReadSearch") == "invulnerable"

    def test_cap_dac_override_writes(self):
        assert verdict(WRITE_DEV_MEM, "CapDacOverride") == "vulnerable"

    def test_cap_setuid_writes_via_owner(self):
        assert verdict(WRITE_DEV_MEM, "CapSetuid") == "vulnerable"

    def test_cap_setgid_cannot_write(self):
        """kmem group has read-only access: the ⊙/✗ cells of Table V."""
        assert verdict(WRITE_DEV_MEM, "CapSetgid") == "invulnerable"

    def test_chown_then_write(self):
        assert verdict(WRITE_DEV_MEM, "CapChown") == "vulnerable"


class TestBindPrivilegedPort:
    def test_needs_capability(self):
        assert verdict(BIND_PRIVILEGED_PORT, "(empty)") == "invulnerable"
        assert verdict(BIND_PRIVILEGED_PORT, "CapNetBindService") == "vulnerable"

    def test_other_caps_do_not_help(self):
        assert (
            verdict(BIND_PRIVILEGED_PORT, "CapSetuid,CapDacOverride,CapChown")
            == "invulnerable"
        )

    def test_needs_socket_syscalls(self):
        surface = frozenset({"open_read", "setuid"})
        assert (
            verdict(BIND_PRIVILEGED_PORT, "CapNetBindService", surface=surface)
            == "invulnerable"
        )

    def test_root_identity_is_not_enough(self):
        """Privileged ports are gated by the capability, not by uid 0
        (our processes run with securebits locked down)."""
        assert verdict(BIND_PRIVILEGED_PORT, "(empty)", uids=ROOT) == "invulnerable"


class TestKillSshd:
    def test_cap_kill_suffices(self):
        assert verdict(KILL_SSHD, "CapKill") == "vulnerable"

    def test_cap_setuid_impersonates_victim(self):
        assert verdict(KILL_SSHD, "CapSetuid") == "vulnerable"

    def test_root_identity_alone_insufficient(self):
        """The victim is owned by *another user* (§VII-A): euid 0 without
        CAP_KILL cannot signal it — this is why passwd_priv4 (euid 0, no
        CapSetuid) shows ✗ in the paper's Table III."""
        assert verdict(KILL_SSHD, "(empty)", uids=ROOT) == "invulnerable"

    def test_empty_caps_safe(self):
        assert verdict(KILL_SSHD, "(empty)") == "invulnerable"

    def test_setgid_does_not_help(self):
        assert verdict(KILL_SSHD, "CapSetgid") == "invulnerable"

    def test_needs_kill_syscall(self):
        surface = FULL_SURFACE - {"kill"}
        assert verdict(KILL_SSHD, "CapKill", surface=surface) == "invulnerable"


class TestQueryConstruction:
    def test_irrelevant_syscalls_excluded(self):
        query = BIND_PRIVILEGED_PORT.build_query(
            CapabilitySet.of("CapNetBindService"), USER, USER, FULL_SURFACE
        )
        names = {message.name for message in query.initial.messages()}
        assert names == {"socket", "bind", "connect"}

    def test_devmem_objects_present(self):
        query = READ_DEV_MEM.build_query(
            CapabilitySet.empty(), USER, USER, FULL_SURFACE
        )
        files = list(query.initial.objects("File"))
        assert len(files) == 1
        assert files[0]["name"] == "/dev/mem"
        assert (files[0]["owner"], files[0]["group"]) == (0, 15)

    def test_victim_process_present_for_attack4(self):
        query = KILL_SSHD.build_query(
            CapabilitySet.empty(), USER, USER, FULL_SURFACE
        )
        victims = [p for p in query.initial.objects("Process") if p.oid == 2]
        assert len(victims) == 1
        assert victims[0]["ruid"] == 2000

    def test_messages_carry_phase_privileges(self):
        caps = CapabilitySet.of("CapSetuid", "CapChown")
        query = READ_DEV_MEM.build_query(caps, USER, USER, FULL_SURFACE)
        for message in query.initial.messages():
            assert message.args[-1] == caps.as_frozenset()

    def test_repeat_multiplies_messages(self):
        single = READ_DEV_MEM.build_query(
            CapabilitySet.empty(), USER, USER, frozenset({"open_read"})
        )
        double = READ_DEV_MEM.build_query(
            CapabilitySet.empty(), USER, USER, frozenset({"open_read"}), repeat=2
        )
        assert len(list(double.initial)) == len(list(single.initial)) + 1
