"""Capability blame analysis — automating the paper's §VII-D reasoning."""

import pytest

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.core.attacks import KILL_SSHD, READ_DEV_MEM, WRITE_DEV_MEM
from repro.core.blame import (
    blame_phases,
    minimal_blocking_sets,
    necessary_capabilities,
    render_blame,
)
from repro.programs import spec_by_name

SURFACE = frozenset(
    {
        "open_read", "open_write", "setuid", "seteuid", "setresuid",
        "setgid", "kill", "chmod", "chown", "unlink", "rename",
    }
)
USER = (1000, 1000, 1000)


class TestNecessaryCapabilities:
    def test_single_route_blames_one_cap(self):
        """With only CapSetuid enabling attack 4, it gets the blame —
        the paper's passwd_priv3 vs passwd_priv4 observation."""
        caps = CapabilitySet.of("CapSetuid", "CapSetgid")
        blamed = necessary_capabilities(KILL_SSHD, caps, USER, USER, SURFACE)
        assert blamed == CapabilitySet.of("CapSetuid")

    def test_invulnerable_phase_blames_nothing(self):
        caps = CapabilitySet.of("CapSetgid")
        assert necessary_capabilities(KILL_SSHD, caps, USER, USER, SURFACE) == (
            CapabilitySet.empty()
        )

    def test_redundant_routes_blame_nothing_individually(self):
        """CapDacReadSearch and CapDacOverride each read /dev/mem alone;
        removing either leaves the other."""
        caps = CapabilitySet.of("CapDacReadSearch", "CapDacOverride")
        blamed = necessary_capabilities(READ_DEV_MEM, caps, USER, USER, SURFACE)
        assert blamed == CapabilitySet.empty()

    def test_credentials_only_attack_blames_nothing(self):
        """euid 0 reads /dev/mem by DAC: no capability is to blame."""
        blamed = necessary_capabilities(
            READ_DEV_MEM, CapabilitySet.of("CapSetgid"), (0, 0, 0), USER, SURFACE
        )
        # With euid 0, removal of CapSetgid leaves the DAC route open.
        assert blamed == CapabilitySet.empty()


class TestMinimalBlockingSets:
    def test_redundant_routes_need_a_pair(self):
        caps = CapabilitySet.of("CapDacReadSearch", "CapDacOverride")
        sets = minimal_blocking_sets(READ_DEV_MEM, caps, USER, USER, SURFACE)
        assert sets == [CapabilitySet.of("CapDacReadSearch", "CapDacOverride")]

    def test_single_cap_set_preferred(self):
        caps = CapabilitySet.of("CapSetuid", "CapSetgid")
        sets = minimal_blocking_sets(WRITE_DEV_MEM, caps, USER, USER, SURFACE)
        assert CapabilitySet.of("CapSetuid") in sets
        # No superset of a reported set is reported.
        for found in sets:
            assert not any(
                other != found and other.issubset(found) for other in sets
            )

    def test_not_feasible_returns_empty(self):
        sets = minimal_blocking_sets(
            KILL_SSHD, CapabilitySet.empty(), USER, USER, SURFACE
        )
        assert sets == []


class TestProgramBlame:
    @pytest.fixture(scope="class")
    def su_analysis(self):
        return PrivAnalyzer().analyze(spec_by_name("su"))

    def test_su_attack4_blames_setuid(self, su_analysis):
        """Reproduces §VII-D2: 'The last privilege to remain live is
        CAP_SETUID' — it is the necessary capability for attack 4 in
        every vulnerable phase."""
        blame = blame_phases(su_analysis)
        for phase_name, row in blame.items():
            if 4 in row:
                assert "CapSetuid" in row[4], phase_name

    def test_render_mentions_phases(self, su_analysis):
        text = render_blame(su_analysis)
        assert "su_priv1" in text
        assert "defeats the attack" in text

    def test_invulnerable_program_renders_cleanly(self):
        analysis = PrivAnalyzer().analyze(spec_by_name("ping"))
        assert "nothing to blame" in render_blame(analysis)
