"""The scenario corpus: seeded generation, materialization, determinism.

The load-bearing property is byte-identity: a :class:`CorpusSpec` must
produce the same corpus on every machine, every interpreter launch, and
every ``PYTHONHASHSEED`` — the profile store's content addresses and the
peers report both inherit their determinism from it.  The hash-seed
regression test builds the same corpus in two subprocesses with
different ``PYTHONHASHSEED`` values and diffs the trees byte for byte
(the historical bug: ``subset`` sampling a hash-ordered set pool by
position).
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.pipeline import PrivAnalyzer
from repro.corpus import (
    CorpusEntry,
    CorpusSpec,
    generate_corpus,
    load_corpus,
    materialize_corpus,
)
from repro.corpus.build import BUILTIN_VIOLATORS
from repro.rewriting import SearchBudget
from repro.testkit.generators import (
    PROGRAM_FAMILIES,
    VIOLATOR_CAP,
    build_program_spec,
    gen_corpus_program_case,
    subset,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestSubsetCanonicalization:
    def test_set_pool_matches_sorted_list_pool(self):
        # Sets are canonicalized to sorted order before sampling, so a
        # hash-ordered pool draws exactly what its sorted form would.
        pool = {"CapSetuid", "CapChown", "CapKill", "CapSysAdmin"}
        a = subset(random.Random(7), pool, 1, 3)
        b = subset(random.Random(7), sorted(pool), 1, 3)
        assert a == b

    def test_sequences_keep_caller_order(self):
        # Lists/tuples are sampled in the caller's order — existing
        # seeds must keep their historical draws.
        pool = ["z", "a", "m"]
        a = subset(random.Random(3), pool, 1, 3)
        b = subset(random.Random(3), list(pool), 1, 3)
        assert a == b


class TestGenerateCorpus:
    def test_same_spec_same_corpus(self):
        spec = CorpusSpec(seed=11, size=12, violators=2)
        assert generate_corpus(spec) == generate_corpus(spec)

    def test_different_seed_different_programs(self):
        a = generate_corpus(CorpusSpec(seed=1, size=6, include_builtins=False,
                                       include_exemplars=False))
        b = generate_corpus(CorpusSpec(seed=2, size=6, include_builtins=False,
                                       include_exemplars=False))
        assert [e.case for e in a] != [e.case for e in b]

    def test_builtin_violators_are_the_paper_pre_refactor_programs(self):
        entries = {e.name: e for e in generate_corpus(CorpusSpec(size=0))}
        assert BUILTIN_VIOLATORS == {"passwd", "su"}
        for name in BUILTIN_VIOLATORS:
            assert entries[name].violator
        assert not entries["passwdRef"].violator
        assert not entries["suRef"].violator

    def test_violators_spread_over_generated_range(self):
        spec = CorpusSpec(seed=0, size=20, violators=4,
                          include_builtins=False, include_exemplars=False)
        flagged = [i for i, e in enumerate(generate_corpus(spec)) if e.violator]
        assert len(flagged) == 4
        assert flagged == [0, 5, 10, 15]

    def test_families_cycle_and_unknown_family_rejected(self):
        spec = CorpusSpec(seed=0, size=len(PROGRAM_FAMILIES),
                          include_builtins=False, include_exemplars=False)
        families = [e.family for e in generate_corpus(spec)]
        assert families == list(PROGRAM_FAMILIES)
        with pytest.raises(ValueError, match="unknown families"):
            generate_corpus(CorpusSpec(families=("mainframe",)))


class TestFamilyPrograms:
    @pytest.mark.parametrize("family", PROGRAM_FAMILIES)
    def test_each_family_compiles_and_runs_clean(self, family):
        case = gen_corpus_program_case(random.Random(f"t:{family}"), family=family)
        assert case["family"] == family
        spec = build_program_spec(case, name=f"test-{family}")
        analyzer = PrivAnalyzer(
            budget=SearchBudget(max_states=20_000, max_seconds=10.0)
        )
        analysis = analyzer.analyze(spec)
        assert analysis.exit_code == 0
        assert analysis.chrono.total > 0

    @pytest.mark.parametrize("family", PROGRAM_FAMILIES)
    def test_violator_variant_holds_the_family_cap(self, family):
        case = gen_corpus_program_case(
            random.Random(f"t:{family}"), family=family, violator=True
        )
        assert case["violator"] is True
        assert VIOLATOR_CAP[family] in case["permitted"]
        # The hoard bracket wraps the whole body.
        assert case["body"][0] == ["priv", "raise", VIOLATOR_CAP[family]]
        assert case["body"][-1] == ["priv", "lower", VIOLATOR_CAP[family]]


class TestMaterialize:
    def test_round_trip(self, tmp_path):
        spec = CorpusSpec(seed=5, size=4, violators=1)
        entries = generate_corpus(spec)
        materialize_corpus(entries, tmp_path, spec)
        assert load_corpus(tmp_path) == entries
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["spec"]["seed"] == 5
        for entry in entries:
            assert (tmp_path / "programs" / f"{entry.name}.privc").exists()

    def test_generated_case_sidecar_rebuilds_the_spec(self, tmp_path):
        spec = CorpusSpec(seed=5, size=2, violators=0,
                          include_builtins=False, include_exemplars=False)
        entries = generate_corpus(spec)
        materialize_corpus(entries, tmp_path, spec)
        entry = entries[0]
        case = json.loads(
            (tmp_path / "programs" / f"{entry.name}.json").read_text()
        )
        assert build_program_spec(case, name=entry.name).source == (
            tmp_path / "programs" / f"{entry.name}.privc"
        ).read_text()

    def test_load_rejects_foreign_schema(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"schema": 999, "entries": []})
        )
        with pytest.raises(ValueError, match="schema"):
            load_corpus(tmp_path)

    def test_load_rejects_non_corpus_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            load_corpus(tmp_path)


def _build_tree(out: Path, hash_seed: str) -> None:
    script = (
        "from repro.corpus import CorpusSpec, generate_corpus, materialize_corpus\n"
        "spec = CorpusSpec(seed=9, size=8, violators=2,\n"
        "                  include_builtins=False, include_exemplars=False)\n"
        f"materialize_corpus(generate_corpus(spec), {str(out)!r}, spec)\n"
    )
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hash_seed)
    subprocess.run([sys.executable, "-c", script], check=True, env=env)


class TestHashSeedByteIdentity:
    def test_trees_identical_under_different_pythonhashseed(self, tmp_path):
        # Regression for the subset() hash-order bug: the same CorpusSpec
        # must materialize to byte-identical trees whatever the
        # interpreter's hash randomization did to set iteration order.
        a, b = tmp_path / "a", tmp_path / "b"
        _build_tree(a, "0")
        _build_tree(b, "1")
        files_a = sorted(p.relative_to(a) for p in a.rglob("*") if p.is_file())
        files_b = sorted(p.relative_to(b) for p in b.rglob("*") if p.is_file())
        assert files_a == files_b
        assert files_a  # the corpus actually materialized something
        for relative in files_a:
            assert (a / relative).read_bytes() == (b / relative).read_bytes(), (
                f"{relative} differs across PYTHONHASHSEED values"
            )


class TestCorpusCli:
    def _run(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_build_then_peers_text_and_json(self, tmp_path):
        corpus = tmp_path / "corpus"
        code, _ = self._run(
            "corpus", "build", "--out", str(corpus), "--seed", "4",
            "--size", "6", "--violators", "1",
            "--no-exemplars", "--no-builtins",
        )
        assert code == 0
        assert (corpus / "manifest.json").exists()

        store = tmp_path / "profiles"
        code, text = self._run(
            "peers", str(corpus), "--store", str(store), "--seed", "0",
        )
        assert code == 0
        assert "peer groups (seed 0)" in text
        assert "top outliers" in text

        report_path = tmp_path / "peers.json"
        code, _ = self._run(
            "peers", str(corpus), "--store", str(store), "--seed", "0",
            "--format", "json", "--out", str(report_path),
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == 1
        assert len(report["outliers"]) == 6

    def test_peers_warm_store_is_byte_identical(self, tmp_path):
        corpus = tmp_path / "corpus"
        self._run(
            "corpus", "build", "--out", str(corpus), "--seed", "4",
            "--size", "3", "--violators", "0",
            "--no-exemplars", "--no-builtins",
        )
        store = tmp_path / "profiles"
        args = ("peers", str(corpus), "--store", str(store), "--format", "json")
        _, cold = self._run(*args)
        _, warm = self._run(*args)
        assert cold == warm

    def test_peers_rejects_non_corpus_directory(self, tmp_path):
        with pytest.raises(SystemExit):
            self._run("peers", str(tmp_path / "nowhere"))


class TestCorpusEntry:
    def test_to_from_dict_round_trip(self):
        entry = generate_corpus(
            CorpusSpec(seed=1, size=1, include_builtins=False,
                       include_exemplars=False)
        )[0]
        assert CorpusEntry.from_dict(entry.to_dict()) == entry

    def test_generated_entry_without_case_is_an_error(self):
        broken = CorpusEntry(name="x", family="daemon", kind="generated")
        with pytest.raises(ValueError, match="no case"):
            broken.spec()
