"""Peer-group analysis: distance, clustering, determinism, violator flagging.

The hypothesis properties pin the determinism contract down hard: the
report is a pure function of the (profile *set*, seed) pair — input
order, sweep pool mode, and interpreter state must all be invisible.
The concrete tests then check the part determinism can't: that a
planted capability hoarder actually surfaces at the top.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import (
    CorpusSpec,
    generate_corpus,
    peer_analysis,
    profile_distance,
    sweep_corpus,
)
from repro.corpus.peers import HOLD_FINDING_MARGIN, k_medoids
from repro.corpus.profile import PROFILE_SCHEMA_VERSION, PrivilegeProfile

CAPS = ("CapSysAdmin", "CapKill", "CapChown", "CapSetuid", "CapNetBindService")

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(
    lambda value: round(value, 6)
)


def _profile(name, windows, invulnerable, cap_hold, root, static, dynamic):
    return PrivilegeProfile(
        program=name,
        schema=PROFILE_SCHEMA_VERSION,
        total_instructions=1000,
        phase_count=3,
        windows=windows,
        invulnerable_window=invulnerable,
        cap_hold=cap_hold,
        root_euid_fraction=root,
        cred_tuples=2,
        static_surface=sorted(static),
        dynamic_surface=sorted(dynamic),
    )


@st.composite
def profiles(draw, min_size=3, max_size=8):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    result = []
    for index in range(count):
        windows = draw(
            st.dictionaries(
                st.sampled_from(["1", "2", "3", "4"]), fractions, max_size=4
            )
        )
        cap_hold = draw(
            st.dictionaries(st.sampled_from(CAPS), fractions, max_size=4)
        )
        surface = draw(
            st.lists(
                st.sampled_from(["open", "setuid", "bind", "chmod", "kill"]),
                unique=True, max_size=5,
            )
        )
        result.append(
            _profile(
                f"p{index:02d}", windows, draw(fractions), cap_hold,
                draw(fractions), surface, surface[:2],
            )
        )
    return result


class TestDistance:
    def test_identity_and_symmetry(self):
        a = _profile("a", {"1": 0.5}, 0.2, {"CapKill": 0.3}, 0.1,
                     ["open"], ["open"])
        b = _profile("b", {"1": 0.1}, 0.6, {"CapSysAdmin": 0.9}, 0.8,
                     ["bind"], [])
        assert profile_distance(a, a) == 0.0
        assert profile_distance(a, b) == profile_distance(b, a)
        assert profile_distance(a, b) > 0.0

    def test_powerful_capability_weighs_double(self):
        base = _profile("base", {}, 0.0, {}, 0.0, [], [])
        sys_admin = _profile("sa", {}, 0.0, {"CapSysAdmin": 1.0}, 0.0, [], [])
        bind = _profile("nb", {}, 0.0, {"CapNetBindService": 1.0}, 0.0, [], [])
        assert profile_distance(base, sys_admin) == pytest.approx(
            2.0 * profile_distance(base, bind)
        )


class TestKMedoids:
    def test_deterministic_for_seed(self):
        rng = random.Random(4)
        points = [[abs(i - j) * rng.random() for j in range(8)] for i in range(8)]
        matrix = [[(points[i][j] + points[j][i]) / 2 for j in range(8)]
                  for i in range(8)]
        for i in range(8):
            matrix[i][i] = 0.0
        first = k_medoids(matrix, k=3, seed=9)
        second = k_medoids(matrix, k=3, seed=9)
        assert first == second

    def test_degenerate_inputs(self):
        assert k_medoids([], k=2) == ([], [])
        medoids, assignment = k_medoids([[0.0]], k=5)
        assert medoids == [0]
        assert assignment == [0]


class TestDeterminismProperties:
    @settings(max_examples=25, deadline=None)
    @given(profiles(), st.integers(min_value=0, max_value=2**16),
           st.integers(min_value=0, max_value=2**16))
    def test_input_order_is_invisible(self, profile_list, seed, shuffle_seed):
        shuffled = list(profile_list)
        random.Random(shuffle_seed).shuffle(shuffled)
        base = peer_analysis(profile_list, seed=seed)
        permuted = peer_analysis(shuffled, seed=seed)
        assert base.to_dict() == permuted.to_dict()

    @settings(max_examples=25, deadline=None)
    @given(profiles(), st.integers(min_value=0, max_value=2**16))
    def test_repeat_runs_are_bit_identical(self, profile_list, seed):
        first = peer_analysis(profile_list, seed=seed)
        second = peer_analysis(profile_list, seed=seed)
        assert first.to_json() == second.to_json()

    @settings(max_examples=25, deadline=None)
    @given(profiles())
    def test_report_is_complete_and_sorted(self, profile_list):
        report = peer_analysis(profile_list, seed=0)
        assert len(report.outliers) == len(profile_list)
        scores = [entry["score"] for entry in report.outliers]
        assert scores == sorted(scores, reverse=True)
        assert all(score >= 0.0 for score in scores)
        clustered = sorted(
            member["program"]
            for cluster in report.clusters
            for member in cluster["members"]
        )
        assert clustered == sorted(p.program for p in profile_list)


class TestSweepModeParity:
    def test_serial_thread_process_profiles_identical(self):
        # The ISSUE's determinism satellite: whatever --jobs mode
        # computed the profiles, the peers report must be bit-identical.
        entries = generate_corpus(
            CorpusSpec(seed=7, size=4, violators=1,
                       include_builtins=False, include_exemplars=False)
        )
        serial = sweep_corpus(entries, mode="serial")
        threaded = sweep_corpus(entries, jobs=2, mode="thread")
        pooled = sweep_corpus(entries, jobs=2, mode="process")
        for a, b, c in zip(serial, threaded, pooled):
            assert a.to_dict() == b.to_dict() == c.to_dict()
        reports = [
            peer_analysis(profile_set, seed=0).to_json()
            for profile_set in (serial, threaded, pooled)
        ]
        assert reports[0] == reports[1] == reports[2]


class TestViolatorFlagging:
    def test_synthetic_hoarder_is_top_outlier_with_finding(self):
        peers = [
            _profile(f"peer{i}", {"1": 0.1}, 0.8,
                     {"CapNetBindService": 0.1}, 0.1,
                     ["open", "bind"], ["open"])
            for i in range(5)
        ]
        hoarder = _profile("hoarder", {"1": 0.9}, 0.0,
                           {"CapSysAdmin": 1.0, "CapNetBindService": 0.1}, 0.9,
                           ["open", "bind"], ["open"])
        report = peer_analysis(peers + [hoarder], k=1, seed=0)
        assert report.outliers[0]["program"] == "hoarder"
        findings = {(f.program, f.capability) for f in report.findings}
        assert ("hoarder", "CapSysAdmin") in findings

    def test_capability_filter_restricts_findings_only(self):
        peers = [
            _profile(f"peer{i}", {}, 0.5, {"CapKill": 0.0}, 0.0, ["open"], [])
            for i in range(4)
        ]
        killer = _profile("killer", {}, 0.5,
                          {"CapKill": 1.0, "CapChown": 1.0}, 0.0, ["open"], [])
        everything = peer_analysis(peers + [killer], k=1, seed=0)
        only_kill = peer_analysis(
            peers + [killer], k=1, seed=0, capability="CapKill"
        )
        assert {f.capability for f in everything.findings} == {
            "CapKill", "CapChown"
        }
        assert {f.capability for f in only_kill.findings} == {"CapKill"}
        assert everything.to_dict()["outliers"] == only_kill.to_dict()["outliers"]

    def test_finding_respects_margin(self):
        margin_peers = [
            _profile(f"m{i}", {}, 0.0, {"CapKill": 0.5}, 0.0, [], [])
            for i in range(3)
        ]
        nudge = _profile(
            "nudge", {}, 0.0,
            {"CapKill": 0.5 + HOLD_FINDING_MARGIN / 2}, 0.0, [], [],
        )
        report = peer_analysis(margin_peers + [nudge], k=1, seed=0)
        assert not report.findings

    def test_generated_violator_flagged_in_real_corpus(self):
        # End-to-end: one planted daemon hoarding CAP_SYS_ADMIN among
        # well-behaved daemons must earn the hold-time finding.
        entries = generate_corpus(
            CorpusSpec(seed=2, size=6, families=("daemon",), violators=1,
                       include_builtins=False, include_exemplars=False)
        )
        violator = next(e.name for e in entries if e.violator)
        profiles_list = sweep_corpus(entries)
        report = peer_analysis(profiles_list, k=1, seed=0)
        flagged = {f.program for f in report.findings
                   if f.capability == "CapSysAdmin"}
        assert violator in flagged
