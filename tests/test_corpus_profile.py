"""PrivilegeProfile extraction, bit-identity, and the content-addressed store.

The invariant everything downstream leans on: a profile computed from
the live in-memory analysis equals the profile computed from that run's
persisted ledger, **bit for bit** — same dict, same JSON bytes.  The
sweep may therefore cache either form and the peers report can never
depend on which path produced a profile.
"""

import json
import random

import pytest

from repro.core.ledger import capture_analysis
from repro.core.pipeline import PrivAnalyzer
from repro.corpus import (
    CorpusSpec,
    PROFILE_SCHEMA_VERSION,
    ProfileStore,
    generate_corpus,
    profile_from_analysis,
    profile_from_ledger,
    profile_key,
    sweep_corpus,
)
from repro.corpus.profile import PrivilegeProfile
from repro.programs import spec_by_name
from repro.rewriting import SearchBudget
from repro.telemetry import Telemetry
from repro.testkit.generators import build_program_spec, gen_corpus_program_case

BUDGET = SearchBudget(max_states=20_000, max_seconds=10.0)


def _analyze(spec):
    telemetry = Telemetry.enabled(audit=True)
    analyzer = PrivAnalyzer(budget=BUDGET, telemetry=telemetry)
    return analyzer.analyze(spec), telemetry


class TestLiveLedgerBitIdentity:
    @pytest.mark.parametrize("program", ["passwd", "su"])
    def test_builtin_program(self, program, tmp_path):
        analysis, telemetry = _analyze(spec_by_name(program))
        live = profile_from_analysis(analysis, audit=telemetry.audit)
        ledger = capture_analysis(
            tmp_path / program, analysis, telemetry, timestamp=0.0
        )
        persisted = profile_from_ledger(ledger)
        assert live.to_dict() == persisted.to_dict()
        assert json.dumps(live.to_dict(), sort_keys=True) == json.dumps(
            persisted.to_dict(), sort_keys=True
        )

    def test_generated_program(self, tmp_path):
        case = gen_corpus_program_case(random.Random("profile:gen"))
        analysis, telemetry = _analyze(build_program_spec(case, name="gen"))
        live = profile_from_analysis(analysis, audit=telemetry.audit)
        ledger = capture_analysis(tmp_path, analysis, telemetry, timestamp=0.0)
        assert live.to_dict() == profile_from_ledger(ledger).to_dict()

    def test_ledger_without_exposure_is_an_error(self, tmp_path):
        class Hollow:
            root = tmp_path
            exposure = None
            syscalls = None

        with pytest.raises(ValueError, match="no exposure"):
            profile_from_ledger(Hollow())


class TestProfileShape:
    def test_passwd_features(self):
        analysis, telemetry = _analyze(spec_by_name("passwd"))
        profile = profile_from_analysis(analysis, audit=telemetry.audit)
        assert profile.schema == PROFILE_SCHEMA_VERSION
        assert profile.program == "passwd"
        assert profile.total_instructions == analysis.chrono.total
        assert profile.phase_count == len(analysis.phases)
        # The paper's pre-refactor passwd hoards its DAC caps for nearly
        # the whole run — the exact feature the peers report flags.
        assert profile.cap_hold.get("CapDacOverride", 0.0) > 0.9
        assert 0.0 <= profile.invulnerable_window <= 1.0
        # The two surfaces use different vocabularies (compiler
        # intrinsics vs kernel audit names); both must be populated.
        assert profile.dynamic_surface  # audit was live
        assert "chmod" in profile.static_surface
        assert "chmod" in profile.dynamic_surface

    def test_round_trips_through_dict(self):
        analysis, telemetry = _analyze(spec_by_name("ping"))
        profile = profile_from_analysis(analysis, audit=telemetry.audit)
        assert PrivilegeProfile.from_dict(profile.to_dict()) == profile

    def test_no_audit_means_empty_dynamic_surface(self):
        analysis, _ = _analyze(spec_by_name("ping"))
        profile = profile_from_analysis(analysis, audit=None)
        assert profile.dynamic_surface == []


class TestProfileKey:
    def test_stable_for_same_spec(self):
        spec = spec_by_name("passwd")
        assert profile_key(spec, BUDGET) == profile_key(spec, BUDGET)

    def test_sensitive_to_source_and_budget(self):
        case = gen_corpus_program_case(random.Random("key"))
        spec = build_program_spec(case, name="k")
        base = profile_key(spec, BUDGET)
        other_budget = SearchBudget(max_states=10, max_seconds=1.0)
        assert profile_key(spec, other_budget) != base
        mutated = dict(case)
        mutated["body"] = list(case["body"]) + [["print", ["lit", 1]]]
        assert profile_key(build_program_spec(mutated, name="k"), BUDGET) != base

    def test_distinct_programs_distinct_keys(self):
        keys = {
            profile_key(spec_by_name(name), BUDGET)
            for name in ("passwd", "passwdRef", "su", "ping")
        }
        assert len(keys) == 4


class TestProfileStore:
    def test_miss_then_hit(self, tmp_path):
        store = ProfileStore(tmp_path)
        assert store.get("deadbeef") is None
        analysis, telemetry = _analyze(spec_by_name("ping"))
        profile = profile_from_analysis(analysis, audit=telemetry.audit)
        store.put("deadbeef", profile)
        assert store.get("deadbeef") == profile
        assert store.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "hit_rate": 0.5,
        }

    def test_foreign_schema_is_a_miss(self, tmp_path):
        store = ProfileStore(tmp_path)
        (tmp_path / "key.json").write_text(json.dumps({"schema": 999}))
        assert store.get("key") is None

    def test_torn_json_is_a_miss(self, tmp_path):
        store = ProfileStore(tmp_path)
        (tmp_path / "key.json").write_text("{not json")
        assert store.get("key") is None


class TestSweepCaching:
    def test_warm_sweep_profiles_nothing(self, tmp_path):
        entries = generate_corpus(
            CorpusSpec(seed=3, size=3, violators=0,
                       include_builtins=False, include_exemplars=False)
        )
        store = ProfileStore(tmp_path)
        telemetry = Telemetry.enabled()
        cold = sweep_corpus(entries, store=store, telemetry=telemetry)
        assert store.hits == 0 and store.misses == len(entries)
        warm = sweep_corpus(entries, store=store, telemetry=telemetry)
        assert store.hits == len(entries)
        assert [p.to_dict() for p in cold] == [p.to_dict() for p in warm]
        metrics = telemetry.metrics
        assert metrics.counter("rosa.corpus.cache_hits").value == len(entries)
        assert metrics.counter("rosa.corpus.profiled").value == len(entries)

    def test_editing_one_program_invalidates_exactly_one_entry(self, tmp_path):
        entries = generate_corpus(
            CorpusSpec(seed=3, size=3, violators=0,
                       include_builtins=False, include_exemplars=False)
        )
        store = ProfileStore(tmp_path)
        sweep_corpus(entries, store=store)
        edited = entries[1]
        case = dict(edited.case)
        case["body"] = list(case["body"]) + [["print", ["lit", 42]]]
        entries[1] = type(edited)(
            name=edited.name, family=edited.family, kind=edited.kind,
            violator=edited.violator, case=case,
        )
        store.hits = store.misses = 0
        sweep_corpus(entries, store=store)
        assert store.hits == 2
        assert store.misses == 1

    def test_storeless_sweep_always_profiles(self):
        entries = generate_corpus(
            CorpusSpec(seed=3, size=2, violators=0,
                       include_builtins=False, include_exemplars=False)
        )
        profiles = sweep_corpus(entries, store=None)
        assert [p.program for p in profiles] == [e.name for e in entries]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep mode"):
            sweep_corpus([], mode="quantum")
