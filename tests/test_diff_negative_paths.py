"""``privanalyzer diff`` negative paths: damaged ledgers must produce a
clear one-line error (SystemExit), never a traceback."""

import json

import pytest

from repro.cli import main
from repro.core.ledger import (
    LEDGER_SCHEMA_VERSION,
    MANIFEST_FILE,
    RunLedger,
    capture_rosa,
)
from repro.rosa.engine import QueryEngine
from repro.telemetry import Telemetry
from repro.testkit import generators


@pytest.fixture()
def ledger_pair(tmp_path):
    """Two healthy, identical ledgers (self-diff clean)."""
    import random

    case = generators.gen_query_case(random.Random("diff-negative"), 10)
    request = generators.build_query_request(case)
    telemetry = Telemetry.enabled(audit=True)
    report = QueryEngine(cache=None, telemetry=telemetry).check(
        request.query, request.budget
    )
    old = tmp_path / "old"
    new = tmp_path / "new"
    capture_rosa(old, report, telemetry, timestamp=0.0)
    capture_rosa(new, report, telemetry, timestamp=0.0)
    return old, new


def manifest_of(root) -> dict:
    return json.loads((root / MANIFEST_FILE).read_text())


def rewrite_manifest(root, data) -> None:
    (root / MANIFEST_FILE).write_text(json.dumps(data))


class TestHealthyBaseline:
    def test_self_diff_is_clean(self, ledger_pair, capsys):
        old, new = ledger_pair
        assert main(["diff", str(old), str(new)]) == 0
        assert "ledgers match" in capsys.readouterr().out


class TestCorruptManifest:
    def test_manifest_not_json(self, ledger_pair):
        old, new = ledger_pair
        (new / MANIFEST_FILE).write_text("{definitely not json")
        with pytest.raises(SystemExit) as failure:
            main(["diff", str(old), str(new)])
        message = str(failure.value)
        assert "privanalyzer:" in message
        assert "corrupt" in message

    def test_manifest_not_an_object(self, ledger_pair):
        old, new = ledger_pair
        (new / MANIFEST_FILE).write_text(json.dumps(["a", "list"]))
        with pytest.raises(SystemExit, match="corrupt"):
            main(["diff", str(old), str(new)])


class TestSchemaVersion:
    def test_missing_schema_version(self, ledger_pair):
        old, new = ledger_pair
        manifest = manifest_of(new)
        del manifest["schema"]
        rewrite_manifest(new, manifest)
        with pytest.raises(SystemExit, match="schema version"):
            main(["diff", str(old), str(new)])

    def test_non_integer_schema_version(self, ledger_pair):
        old, new = ledger_pair
        manifest = manifest_of(new)
        manifest["schema"] = "one"
        rewrite_manifest(new, manifest)
        with pytest.raises(SystemExit, match="schema version"):
            main(["diff", str(old), str(new)])

    def test_newer_schema_version_is_rejected_with_guidance(self, ledger_pair):
        old, new = ledger_pair
        manifest = manifest_of(new)
        manifest["schema"] = LEDGER_SCHEMA_VERSION + 1
        rewrite_manifest(new, manifest)
        with pytest.raises(SystemExit) as failure:
            main(["diff", str(old), str(new)])
        assert "newer than this tool" in str(failure.value)


class TestMissingArtifacts:
    def test_missing_listed_file(self, ledger_pair):
        old, new = ledger_pair
        listed = manifest_of(new)["files"]
        assert listed, "capture should list artifact files"
        (new / listed[0]).unlink()
        with pytest.raises(SystemExit) as failure:
            main(["diff", str(old), str(new)])
        message = str(failure.value)
        assert "missing artifact" in message
        assert listed[0] in message

    def test_nonexistent_directory(self, ledger_pair, tmp_path):
        old, _new = ledger_pair
        with pytest.raises(SystemExit, match="not a run ledger"):
            main(["diff", str(old), str(tmp_path / "nowhere")])


class TestLoaderDirectly:
    def test_load_errors_are_value_errors_not_tracebacks(self, ledger_pair):
        _old, new = ledger_pair
        (new / MANIFEST_FILE).write_text("[1,")
        with pytest.raises(ValueError):
            RunLedger.load(new)
