"""PrivC frontend: lexer, parser, sema and compiled-program behaviour."""

import pytest

from repro.frontend import (
    LexError,
    ParseError,
    SemaError,
    analyze,
    builtin_constants,
    compile_source,
    parse,
    tokenize,
)
from repro.oskernel import Kernel
from repro.vm import Interpreter


def run_main(source, argv=(), stdin=()):
    """Compile and execute a PrivC program; return (exit code, stdout)."""
    module = compile_source(source)
    kernel = Kernel()
    process = kernel.spawn(1000, 1000)
    vm = Interpreter(module, kernel, process, argv=list(argv), stdin=list(stdin))
    code = vm.run()
    return code, vm.stdout


class TestLexer:
    def test_keywords_and_idents(self):
        kinds = [(t.kind, t.text) for t in tokenize("int x")]
        assert kinds == [("keyword", "int"), ("ident", "x"), ("eof", "")]

    def test_numbers(self):
        tokens = tokenize("42 0x1f 0o640")
        assert [t.value for t in tokens[:-1]] == [42, 31, 0o640]

    def test_string_escapes(self):
        token = tokenize(r'"a\nb\t\"c\\"')[0]
        assert token.value == 0
        assert token.text == 'a\nb\t"c\\'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_comments_stripped(self):
        tokens = tokenize("a // line\n/* block\nmore */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_maximal_munch_operators(self):
        tokens = tokenize("a<=b==c&&d")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<=", "==", "&&"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].pos.line == 1
        assert tokens[1].pos.line == 2
        assert tokens[1].pos.column == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestParser:
    def test_precedence(self):
        code, out = run_main("void main() { print_int(2 + 3 * 4); }")
        assert out == ["14"]

    def test_parentheses_override(self):
        _, out = run_main("void main() { print_int((2 + 3) * 4); }")
        assert out == ["20"]

    def test_unary_minus_and_not(self):
        _, out = run_main("void main() { print_int(-5 + !0); }")
        assert out == ["-4"]

    def test_else_if_chain(self):
        source = """
        void main() {
            int x = 2;
            if (x == 1) { print_int(1); }
            else if (x == 2) { print_int(2); }
            else { print_int(3); }
        }
        """
        _, out = run_main(source)
        assert out == ["2"]

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void main() { int x = 1 }")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse("void main( { }")

    def test_global_with_negative_init(self):
        source = "int g = -3;\nvoid main() { print_int(g); }"
        _, out = run_main(source)
        assert out == ["-3"]

    def test_extern_declaration(self):
        source = """
        extern int open(str path, str flags);
        void main() { print_int(open("/nope", "r")); }
        """
        code, out = run_main(source)
        assert int(out[0]) < 0  # ENOENT as negative errno

    def test_for_without_clauses_needs_break(self):
        source = """
        void main() {
            int i = 0;
            for (;;) {
                i = i + 1;
                if (i == 3) { break; }
            }
            print_int(i);
        }
        """
        _, out = run_main(source)
        assert out == ["3"]


class TestSema:
    def test_undeclared_variable(self):
        with pytest.raises(SemaError, match="undeclared"):
            compile_source("void main() { x = 1; }")

    def test_use_before_declaration(self):
        with pytest.raises(SemaError, match="undeclared"):
            compile_source("void main() { int y = x; }")

    def test_redeclaration_in_scope(self):
        with pytest.raises(SemaError, match="redeclaration"):
            compile_source("void main() { int x; int x; }")

    def test_shadowing_in_inner_scope_allowed(self):
        source = """
        void main() {
            int x = 1;
            if (x == 1) {
                int y = 2;
                print_int(y);
            }
            print_int(x);
        }
        """
        _, out = run_main(source)
        assert out == ["2", "1"]

    def test_break_outside_loop(self):
        with pytest.raises(SemaError, match="break outside"):
            compile_source("void main() { break; }")

    def test_void_return_with_value(self):
        with pytest.raises(SemaError, match="void function returns a value"):
            compile_source("void main() { return 1; }")

    def test_nonvoid_return_without_value(self):
        with pytest.raises(SemaError, match="returns nothing"):
            compile_source("int f() { return; } void main() { }")

    def test_arity_mismatch_for_defined_function(self):
        with pytest.raises(SemaError, match="passes 1 args"):
            compile_source("int f(int a, int b) { return a; } void main() { f(1); }")

    def test_address_of_unknown_function(self):
        with pytest.raises(SemaError, match="no such function"):
            compile_source("void main() { fnptr p = &missing; }")

    def test_assignment_to_constant(self):
        with pytest.raises(SemaError, match="constant"):
            compile_source("void main() { CAP_SETUID = 1; }")

    def test_shadowing_constant_rejected(self):
        with pytest.raises(SemaError, match="shadows a builtin"):
            compile_source("void main() { int SIGKILL = 1; }")

    def test_duplicate_function(self):
        with pytest.raises(SemaError, match="duplicate function"):
            compile_source("void f() { } void f() { } void main() { }")

    def test_all_errors_reported_together(self):
        source = "void main() { x = 1; y = 2; }"
        with pytest.raises(SemaError) as excinfo:
            compile_source(source)
        assert len(excinfo.value.problems) == 2

    def test_builtin_constants_cover_caps_and_signals(self):
        constants = builtin_constants()
        assert constants["CAP_SETUID"] == 1 << 7
        assert constants["SIGKILL"] == 9
        assert constants["KEEP"] == -1


class TestExecution:
    def test_fibonacci_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void main() { print_int(fib(10)); }
        """
        _, out = run_main(source)
        assert out == ["55"]

    def test_while_loop_sum(self):
        source = """
        void main() {
            int i = 0;
            int total = 0;
            while (i < 100) { total = total + i; i = i + 1; }
            print_int(total);
        }
        """
        _, out = run_main(source)
        assert out == ["4950"]

    def test_continue(self):
        source = """
        void main() {
            int total = 0;
            int i;
            for (i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            print_int(total);
        }
        """
        _, out = run_main(source)
        assert out == ["25"]

    def test_short_circuit_and_skips_rhs(self):
        source = """
        int touched;
        int touch() { touched = 1; return 1; }
        void main() {
            touched = 0;
            if (0 == 1 && touch() == 1) { print_int(99); }
            print_int(touched);
        }
        """
        _, out = run_main(source)
        assert out == ["0"]

    def test_short_circuit_or_skips_rhs(self):
        source = """
        int touched;
        int touch() { touched = 1; return 1; }
        void main() {
            touched = 0;
            if (1 == 1 || touch() == 1) { print_int(7); }
            print_int(touched);
        }
        """
        _, out = run_main(source)
        assert out == ["7", "0"]

    def test_function_pointer_dispatch(self):
        source = """
        int double_it(int x) { return x * 2; }
        int negate(int x) { return -x; }
        void main() {
            fnptr op = &double_it;
            print_int(op(21));
            op = &negate;
            print_int(op(21));
        }
        """
        _, out = run_main(source)
        assert out == ["42", "-21"]

    def test_globals_shared_across_functions(self):
        source = """
        int counter;
        void bump() { counter = counter + 1; }
        void main() {
            counter = 0;
            bump(); bump(); bump();
            print_int(counter);
        }
        """
        _, out = run_main(source)
        assert out == ["3"]

    def test_division_and_modulo_c_semantics(self):
        source = """
        void main() {
            print_int(-7 / 2);
            print_int(-7 % 2);
            print_int(7 / -2);
        }
        """
        _, out = run_main(source)
        assert out == ["-3", "-1", "-3"]  # truncation toward zero

    def test_argv_and_stdin(self):
        source = """
        void main() {
            print_str(arg_str(0));
            print_str(read_line());
        }
        """
        _, out = run_main(source, argv=["hello"], stdin=["typed"])
        assert out == ["hello", "typed"]

    def test_exit_code(self):
        code, _ = run_main("void main() { exit(3); }")
        assert code == 3

    def test_string_helpers(self):
        source = """
        void main() {
            str joined = strcat("a:b", ":c");
            print_str(str_field(joined, 1, ":"));
            print_int(strlen(joined));
            print_int(streq(joined, "a:b:c"));
        }
        """
        _, out = run_main(source)
        assert out == ["b", "5", "1"]

    def test_statement_after_return_dropped(self):
        source = """
        int f() {
            return 1;
            print_int(999);
        }
        void main() { print_int(f()); }
        """
        _, out = run_main(source)
        assert out == ["1"]
