"""Property-based testing of the PrivC frontend.

Hypothesis generates random arithmetic/logical expressions; the compiled
PrivC program must print exactly what a Python reference evaluator
computes (with C semantics for division and 64-bit wrapping).
"""

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir import I64
from repro.oskernel import Kernel
from repro.vm import Interpreter


# -- a tiny expression AST shared by both evaluators ----------------------------

OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="]


def exprs(depth):
    leaf = st.integers(min_value=-50, max_value=50).map(lambda n: ("lit", n))
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    binary = st.tuples(st.sampled_from(OPS), sub, sub).map(
        lambda t: ("bin", t[0], t[1], t[2])
    )
    unary = sub.map(lambda e: ("neg", e))
    logical = st.tuples(st.sampled_from(["&&", "||"]), sub, sub).map(
        lambda t: ("bin", t[0], t[1], t[2])
    )
    return st.one_of(leaf, binary, unary, logical)


def to_privc(expr) -> str:
    kind = expr[0]
    if kind == "lit":
        value = expr[1]
        return f"(0 - {-value})" if value < 0 else str(value)
    if kind == "neg":
        return f"(-{to_privc(expr[1])})"
    _, operator, lhs, rhs = expr
    return f"({to_privc(lhs)} {operator} {to_privc(rhs)})"


def wrap64(value: int) -> int:
    return I64.wrap(value)


def reference_eval(expr):
    """Python reference with C semantics; None signals division by zero."""
    kind = expr[0]
    if kind == "lit":
        return expr[1]
    if kind == "neg":
        inner = reference_eval(expr[1])
        return None if inner is None else wrap64(-inner)
    _, operator, lhs_expr, rhs_expr = expr
    lhs = reference_eval(lhs_expr)
    if lhs is None:
        return None
    if operator == "&&":
        if lhs == 0:
            return 0
        rhs = reference_eval(rhs_expr)
        return None if rhs is None else int(rhs != 0)
    if operator == "||":
        if lhs != 0:
            return 1
        rhs = reference_eval(rhs_expr)
        return None if rhs is None else int(rhs != 0)
    rhs = reference_eval(rhs_expr)
    if rhs is None:
        return None
    if operator in ("/", "%") and rhs == 0:
        return None
    table = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1),
        "%": lambda a, b: a - (abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1)) * b,
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
        "<": lambda a, b: int(a < b),
        "<=": lambda a, b: int(a <= b),
        ">": lambda a, b: int(a > b),
        ">=": lambda a, b: int(a >= b),
        "==": lambda a, b: int(a == b),
        "!=": lambda a, b: int(a != b),
    }
    return wrap64(table[operator](lhs, rhs))


def run_privc_expression(text: str):
    source = f"void main() {{ print_int({text}); }}"
    module = compile_source(source)
    kernel = Kernel()
    process = kernel.spawn(1000, 1000)
    vm = Interpreter(module, kernel, process)
    from repro.vm import VMError

    try:
        vm.run()
    except VMError as error:
        if "by zero" in str(error):
            return None
        raise
    return int(vm.stdout[0])


@settings(max_examples=120, deadline=None)
@given(exprs(3))
def test_expression_evaluation_matches_reference(expr):
    expected = reference_eval(expr)
    actual = run_privc_expression(to_privc(expr))
    assert actual == expected


@settings(max_examples=60, deadline=None)
@given(exprs(3))
def test_optimised_evaluation_matches_reference(expr):
    """The same property through the optimisation pipeline."""
    from repro.ir.passes import optimize_module

    expected = reference_eval(expr)
    source = f"void main() {{ print_int({to_privc(expr)}); }}"
    module = compile_source(source)
    optimize_module(module)
    kernel = Kernel()
    process = kernel.spawn(1000, 1000)
    vm = Interpreter(module, kernel, process)
    from repro.vm import VMError

    try:
        vm.run()
        actual = int(vm.stdout[0])
    except VMError as error:
        assert "by zero" in str(error)
        actual = None
    assert actual == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=8))
def test_loop_summation_matches_python(values):
    """Summing through PrivC control flow equals Python's sum."""
    assignments = "\n".join(
        f"    if (i == {index}) {{ x = x + {value}; }}"
        for index, value in enumerate(values)
    )
    source = f"""
    void main() {{
        int x = 0;
        int i;
        for (i = 0; i < {len(values)}; i = i + 1) {{
{assignments}
        }}
        print_int(x);
    }}
    """
    module = compile_source(source)
    kernel = Kernel()
    process = kernel.spawn(1000, 1000)
    vm = Interpreter(module, kernel, process)
    vm.run()
    assert int(vm.stdout[0]) == sum(values)
