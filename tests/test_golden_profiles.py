"""Golden privilege profiles for the paper's study programs.

One checked-in JSON per program under ``tests/golden/profiles/`` — the
five Table III programs plus their post-refactor variants.  Any change
to the pipeline, the exposure serialisation, or the profile extractor
that moves a single feature shows up here as a readable per-key diff,
not a silent drift of every downstream peer-group score.

Regenerate deliberately after a reviewed change with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_profiles.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.pipeline import PrivAnalyzer
from repro.corpus import profile_from_analysis
from repro.programs import spec_by_name
from repro.rewriting import SearchBudget
from repro.telemetry import Telemetry

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "profiles"

#: The paper's study set: pre-refactor programs and their privilege-
#: separated/refactored counterparts.
GOLDEN_PROGRAMS = (
    "passwd",
    "passwdRef",
    "ping",
    "sshd",
    "sshdPrivsep",
    "su",
    "suRef",
    "thttpd",
)

BUDGET = SearchBudget(max_states=20_000, max_seconds=10.0)


def _current_profile(program: str) -> dict:
    telemetry = Telemetry.enabled(audit=True)
    analyzer = PrivAnalyzer(budget=BUDGET, telemetry=telemetry)
    analysis = analyzer.analyze(spec_by_name(program))
    return profile_from_analysis(analysis, audit=telemetry.audit).to_dict()


def _diff(golden: dict, current: dict) -> str:
    """A per-key description of what moved, for the failure message."""
    lines = []
    for key in sorted(set(golden) | set(current)):
        expected, actual = golden.get(key), current.get(key)
        if expected == actual:
            continue
        if isinstance(expected, dict) and isinstance(actual, dict):
            for sub in sorted(set(expected) | set(actual)):
                if expected.get(sub) != actual.get(sub):
                    lines.append(
                        f"  {key}.{sub}: golden={expected.get(sub)!r} "
                        f"current={actual.get(sub)!r}"
                    )
        elif isinstance(expected, list) and isinstance(actual, list):
            gone = sorted(set(map(str, expected)) - set(map(str, actual)))
            new = sorted(set(map(str, actual)) - set(map(str, expected)))
            detail = []
            if gone:
                detail.append(f"lost {gone}")
            if new:
                detail.append(f"gained {new}")
            lines.append(f"  {key}: {'; '.join(detail) or 'reordered'}")
        else:
            lines.append(f"  {key}: golden={expected!r} current={actual!r}")
    return "\n".join(lines)


@pytest.mark.parametrize("program", GOLDEN_PROGRAMS)
def test_profile_matches_golden(program):
    path = GOLDEN_DIR / f"{program}.json"
    current = _current_profile(program)
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden profile for {program} rewritten")
    assert path.exists(), (
        f"no golden profile for {program}; generate with UPDATE_GOLDEN=1"
    )
    golden = json.loads(path.read_text())
    assert golden == current, (
        f"privilege profile for {program} drifted from golden:\n"
        + _diff(golden, current)
    )


def test_golden_set_is_exactly_the_study_programs():
    on_disk = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))
    assert on_disk == sorted(GOLDEN_PROGRAMS)


def test_refactor_shrinks_the_hoard():
    """The paper's point, as a profile delta: the refactored passwd and
    su hold their powerful capabilities for far less of execution."""
    for pre, post, cap in (
        ("passwd", "passwdRef", "CapDacOverride"),
        ("su", "suRef", "CapSetuid"),
    ):
        before = _current_profile(pre)["cap_hold"].get(cap, 0.0)
        after = _current_profile(post)["cap_hold"].get(cap, 0.0)
        assert after < before, (pre, post, cap, before, after)
