"""CFG utilities, dominators, call graph and the data-flow framework."""

import pytest

from repro.ir import (
    CallGraph,
    I64,
    IRBuilder,
    Module,
    SetDataflowProblem,
    VOID,
    dominators,
    immediate_dominators,
    postorder,
    predecessors,
    reachable_blocks,
    reverse_postorder,
    solve,
)


def diamond():
    """entry -> (left | right) -> merge."""
    module = Module("m")
    function = module.add_function("f", VOID, [I64], ["x"])
    entry = function.add_block("entry")
    left = function.add_block("left")
    right = function.add_block("right")
    merge = function.add_block("merge")
    builder = IRBuilder(entry)
    cond = builder.icmp("eq", function.arguments[0], 0)
    builder.br(cond, left, right)
    builder.position_at_end(left)
    builder.jmp(merge)
    builder.position_at_end(right)
    builder.jmp(merge)
    builder.position_at_end(merge)
    builder.ret()
    return function, (entry, left, right, merge)


def loop():
    """entry -> header <-> body ; header -> exit."""
    module = Module("m")
    function = module.add_function("f", VOID, [I64], ["n"])
    entry = function.add_block("entry")
    header = function.add_block("header")
    body = function.add_block("body")
    exit_block = function.add_block("exit")
    builder = IRBuilder(entry)
    builder.jmp(header)
    builder.position_at_end(header)
    cond = builder.icmp("sgt", function.arguments[0], 0)
    builder.br(cond, body, exit_block)
    builder.position_at_end(body)
    builder.jmp(header)
    builder.position_at_end(exit_block)
    builder.ret()
    return function, (entry, header, body, exit_block)


class TestCfg:
    def test_predecessors_diamond(self):
        function, (entry, left, right, merge) = diamond()
        preds = predecessors(function)
        assert preds[entry] == []
        assert set(preds[merge]) == {left, right}

    def test_reachable_excludes_orphans(self):
        function, _ = diamond()
        orphan = function.add_block("orphan")
        IRBuilder(orphan).ret()
        assert orphan not in reachable_blocks(function)

    def test_postorder_ends_with_entry(self):
        function, (entry, *_rest) = diamond()
        assert postorder(function)[-1] is entry
        assert reverse_postorder(function)[0] is entry

    def test_rpo_respects_loop(self):
        function, (entry, header, body, exit_block) = loop()
        order = reverse_postorder(function)
        assert order.index(entry) < order.index(header)
        assert order.index(header) < order.index(body)


class TestDominators:
    def test_diamond(self):
        function, (entry, left, right, merge) = diamond()
        dom = dominators(function)
        assert dom[merge] == {entry, merge}
        assert dom[left] == {entry, left}

    def test_loop_header_dominates_body(self):
        function, (entry, header, body, exit_block) = loop()
        dom = dominators(function)
        assert header in dom[body]
        assert header in dom[exit_block]
        assert body not in dom[exit_block]

    def test_immediate_dominators(self):
        function, (entry, left, right, merge) = diamond()
        idom = immediate_dominators(function)
        assert idom[merge] is entry
        assert idom[left] is entry
        assert entry not in idom  # the entry has no dominator


class TestCallGraph:
    def build(self, indirect_filter="address-taken"):
        module = Module("m")
        callee_a = module.add_function("a", I64, [I64])
        callee_b = module.add_function("b", I64, [I64, I64])
        main = module.add_function("main", I64, [])
        for function in (callee_a, callee_b):
            builder = IRBuilder(function.add_block("entry"))
            builder.ret(0)
        builder = IRBuilder(main.add_block("entry"))
        builder.call(callee_a, [1])  # direct
        # Indirect: store &b in a slot and call through it.
        slot = builder.alloca("fp")
        builder.store(callee_b.ref(), slot)
        loaded = builder.load(slot)
        builder.call(loaded, [1, 2])
        builder.ret(0)
        return module, CallGraph(module, indirect_filter), callee_a, callee_b, main

    def test_direct_edge(self):
        _, graph, callee_a, _, main = self.build()
        assert callee_a in graph.callees[main]

    def test_address_taken_marked(self):
        module, graph, callee_a, callee_b, _ = self.build()
        assert callee_b.address_taken
        assert not callee_a.address_taken  # only used as a direct callee

    def test_conservative_indirect_targets(self):
        _, graph, _, callee_b, main = self.build()
        assert callee_b in graph.callees[main]
        assert graph.has_indirect_call[main]

    def test_type_matched_filter_uses_arity(self):
        module, graph, callee_a, callee_b, main = self.build("type-matched")
        # The indirect call passes 2 args; only b (2 params) matches.
        assert callee_b in graph.callees[main]

    def test_type_matched_excludes_wrong_arity(self):
        module = Module("m")
        one = module.add_function("one", I64, [I64])
        two = module.add_function("two", I64, [I64, I64])
        main = module.add_function("main", I64, [])
        for function in (one, two):
            IRBuilder(function.add_block("entry")).ret(0)
        builder = IRBuilder(main.add_block("entry"))
        slot = builder.alloca("fp")
        builder.store(one.ref(), slot)
        builder.store(two.ref(), slot)
        loaded = builder.load(slot)
        builder.call(loaded, [7])  # 1 argument
        builder.ret(0)
        conservative = CallGraph(module, "address-taken")
        precise = CallGraph(module, "type-matched")
        assert two in conservative.callees[main]
        assert two not in precise.callees[main]
        assert one in precise.callees[main]

    def test_transitive_callees(self):
        module = Module("m")
        c = module.add_function("c", I64, [])
        b = module.add_function("b", I64, [])
        a = module.add_function("a", I64, [])
        IRBuilder(c.add_block("entry")).ret(0)
        builder = IRBuilder(b.add_block("entry"))
        builder.call(c, [])
        builder.ret(0)
        builder = IRBuilder(a.add_block("entry"))
        builder.call(b, [])
        builder.ret(0)
        graph = CallGraph(module)
        assert graph.transitive_callees(a) == {b, c}

    def test_transitive_handles_recursion(self):
        module = Module("m")
        f = module.add_function("f", I64, [])
        builder = IRBuilder(f.add_block("entry"))
        builder.call(f, [])
        builder.ret(0)
        graph = CallGraph(module)
        assert graph.transitive_callees(f) == {f}

    def test_unknown_filter_rejected(self):
        module = Module("m")
        with pytest.raises(ValueError):
            CallGraph(module, "magic")

    def test_callers_inverts(self):
        _, graph, callee_a, _, main = self.build()
        assert main in graph.callers()[callee_a]


class _Reachability(SetDataflowProblem):
    """Forward may-analysis: which block names have been passed through."""

    direction = "forward"
    meet = "union"

    def gen(self, block):
        return frozenset({block.name})

    def kill(self, block):
        return frozenset()


class _BackwardReach(_Reachability):
    direction = "backward"


class TestDataflow:
    def test_forward_reaches_merge_from_both_arms(self):
        function, (entry, left, right, merge) = diamond()
        result = solve(_Reachability(), function)
        assert result.block_in[merge] == frozenset({"left", "right", "entry"})
        assert "merge" in result.block_out[merge]

    def test_backward_flows_from_exit(self):
        function, (entry, header, body, exit_block) = loop()
        result = solve(_BackwardReach(), function)
        # Everything downstream of entry includes the exit block's name.
        assert "exit" in result.block_in[entry]

    def test_loop_reaches_fixpoint(self):
        function, (entry, header, body, exit_block) = loop()
        result = solve(_Reachability(), function)
        assert "body" in result.block_in[header]  # via the back edge
        assert "entry" in result.block_in[exit_block]

    def test_declaration_is_empty(self):
        module = Module("m")
        declared = module.declare("ext", I64, [])
        result = solve(_Reachability(), declared)
        assert result.block_in == {}
