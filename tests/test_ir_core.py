"""IR types, values, builder, functions, printer."""

import pytest

from repro.ir import (
    BOOL,
    BasicBlock,
    ConstantInt,
    ConstantString,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    IntType,
    Module,
    PTR,
    VOID,
    print_function,
    print_module,
)


class TestTypes:
    def test_int_types_interned(self):
        assert IntType(64) is I64
        assert IntType(32) is I32

    def test_int_type_bounds(self):
        assert I64.max_value == 2**63 - 1
        assert I64.min_value == -(2**63)

    def test_wrap_two_complement(self):
        assert I64.wrap(2**63) == -(2**63)
        assert I64.wrap(-1) == -1
        assert IntType(8).wrap(255) == -1
        assert IntType(8).wrap(128) == -128
        assert IntType(8).wrap(127) == 127

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_function_type_equality(self):
        a = FunctionType(I64, (I64,))
        b = FunctionType(I64, (I64,))
        assert a == b and hash(a) == hash(b)
        assert a != FunctionType(I64, (I64, I64))

    def test_function_type_str(self):
        assert str(FunctionType(VOID, (I64, PTR))) == "void (i64, ptr)"
        assert str(FunctionType(I64, (), vararg=True)) == "i64 (...)"


class TestConstants:
    def test_constant_wraps(self):
        assert ConstantInt(I64, 2**64 - 1).value == -1

    def test_constant_equality(self):
        assert ConstantInt(I64, 3) == ConstantInt(I64, 3)
        assert ConstantInt(I64, 3) != ConstantInt(I32, 3)

    def test_string_constant(self):
        assert ConstantString("hi").value == "hi"
        assert ConstantString("hi") == ConstantString("hi")


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function("f", I64, [])
        with pytest.raises(ValueError):
            module.add_function("f", I64, [])

    def test_declare_idempotent(self):
        module = Module("m")
        first = module.declare("ext", I64, [I64])
        second = module.declare("ext", I64, [I64])
        assert first is second

    def test_declare_conflict_rejected(self):
        module = Module("m")
        module.declare("ext", I64, [I64])
        with pytest.raises(ValueError):
            module.declare("ext", I64, [I64, I64])

    def test_get_function_missing(self):
        with pytest.raises(KeyError):
            Module("m").get_function("nope")

    def test_globals(self):
        module = Module("m")
        var = module.add_global("counter", 7)
        assert var.initial == 7
        with pytest.raises(ValueError):
            module.add_global("counter")

    def test_contains(self):
        module = Module("m")
        module.add_function("f", I64, [])
        assert "f" in module
        assert "g" not in module


class TestBasicBlocks:
    def test_append_after_terminator_rejected(self):
        module = Module("m")
        function = module.add_function("f", VOID, [])
        block = function.add_block("entry")
        builder = IRBuilder(block)
        builder.ret()
        with pytest.raises(ValueError):
            builder.ret()

    def test_unique_block_names(self):
        module = Module("m")
        function = module.add_function("f", VOID, [])
        a = function.add_block("x")
        b = function.add_block("x")
        assert a.name != b.name

    def test_entry_requires_body(self):
        module = Module("m")
        function = module.declare("ext", I64, [])
        with pytest.raises(ValueError):
            function.entry


class TestBuilder:
    def build_simple(self):
        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        builder = IRBuilder(function.add_block("entry"))
        return module, function, builder

    def test_coercion(self):
        _, _, builder = self.build_simple()
        value = builder.value(5)
        assert isinstance(value, ConstantInt)
        assert builder.value("s").value == "s"
        assert builder.value(True).type is BOOL

    def test_arith_chain_executes(self):
        module, function, builder = self.build_simple()
        x = function.arguments[0]
        total = builder.add(builder.mul(x, 2), 1)
        builder.ret(total)
        from repro.oskernel import Kernel
        from repro.vm import Interpreter

        kernel = Kernel()
        process = kernel.spawn(0, 0)
        vm = Interpreter(module, kernel, process)
        assert vm.call_function(function, [20]) == 41

    def test_unknown_binop_rejected(self):
        _, _, builder = self.build_simple()
        with pytest.raises(ValueError):
            builder.binop("pow", 2, 3)

    def test_unknown_icmp_rejected(self):
        _, _, builder = self.build_simple()
        with pytest.raises(ValueError):
            builder.icmp("ult", 1, 2)

    def test_builder_without_position(self):
        with pytest.raises(ValueError):
            IRBuilder().ret()


class TestPrinter:
    def test_prints_declaration(self):
        module = Module("m")
        module.declare("ext", I64, [I64, PTR])
        assert print_module(module).splitlines()[-1] == "declare i64 @ext(i64 %arg0, ptr %arg1)"

    def test_prints_numbered_values(self):
        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        builder = IRBuilder(function.add_block("entry"))
        value = builder.add(function.arguments[0], 1)
        builder.ret(value)
        text = print_function(function)
        assert "%0 = add %x, 1" in text
        assert "ret %0" in text

    def test_prints_globals(self):
        module = Module("m")
        module.add_global("g", 3)
        assert "@g = global i64 3" in print_module(module)


class TestPrinterControlFlow:
    def test_prints_phi_and_select(self):
        from repro.ir import Phi, ConstantInt, print_function

        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        entry = function.add_block("entry")
        left = function.add_block("left")
        merge = function.add_block("merge")
        builder = IRBuilder(entry)
        cond = builder.icmp("eq", function.arguments[0], 0)
        builder.br(cond, left, merge)
        builder.position_at_end(left)
        builder.jmp(merge)
        builder.position_at_end(merge)
        phi = builder.phi(I64)
        phi.add_incoming(ConstantInt(I64, 1), entry)
        phi.add_incoming(ConstantInt(I64, 2), left)
        sel = builder.select(cond, phi, 0)
        builder.ret(sel)
        text = print_function(function)
        assert "phi [1, %entry], [2, %left]" in text
        assert "br %0, label %left, label %merge" in text
        assert "select" in text

    def test_prints_string_and_function_operands(self):
        from repro.ir import print_function

        module = Module("m")
        ext = module.declare("print_str", I64, [PTR])
        function = module.add_function("f", VOID, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.call(ext, ["hello"])
        builder.ret()
        text = print_function(function)
        assert "call @print_str('hello')" in text
