"""Optimisation passes: folding, branch simplification, DCE — and the
semantic-preservation property, checked by differential execution."""

import pytest

from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.passes import optimize_module
from repro.oskernel import Kernel
from repro.vm import Interpreter


def run(module, argv=(), stdin=()):
    kernel = Kernel()
    process = kernel.spawn(1000, 1000)
    vm = Interpreter(module, kernel, process, argv=list(argv), stdin=list(stdin))
    code = vm.run()
    return code, vm.stdout, vm.executed_instructions


def optimized(source):
    module = compile_source(source)
    report = optimize_module(module)
    verify_module(module)
    return module, report


class TestFolding:
    def test_constant_arithmetic_folds(self):
        module, report = optimized("void main() { print_int(2 + 3 * 4); }")
        assert report.folded_instructions >= 2
        code, out, _ = run(module)
        assert out == ["14"]

    def test_division_by_zero_not_folded(self):
        # 1/0 must keep trapping at runtime, not fold to garbage.
        module, report = optimized("void main() { print_int(1 / (2 - 2)); }")
        from repro.vm import VMError

        kernel = Kernel()
        process = kernel.spawn(1000, 1000)
        vm = Interpreter(module, kernel, process)
        with pytest.raises(VMError, match="by zero"):
            vm.run()

    def test_folds_through_chains(self):
        module, report = optimized(
            "void main() { int x = (1 << 7) | (1 << 0); print_int(x); }"
        )
        _, out, _ = run(module)
        assert out == ["129"]


class TestBranchSimplification:
    def test_constant_branch_becomes_jump(self):
        module, report = optimized(
            """
            void main() {
                if (1 == 1) { print_int(1); } else { print_int(2); }
            }
            """
        )
        assert report.simplified_branches >= 1
        assert report.removed_blocks >= 1
        _, out, _ = run(module)
        assert out == ["1"]

    def test_dead_arm_removed(self):
        module, report = optimized(
            """
            void main() {
                if (2 < 1) { print_int(999); }
                print_int(7);
            }
            """
        )
        _, out, _ = run(module)
        assert out == ["7"]
        main = module.get_function("main")
        # The then-arm is unreachable and must be gone.
        assert all(block.name != "if.then" for block in main.blocks)


class TestSemanticPreservation:
    CORPUS = [
        ("void main() { print_int(10 % 3 + 100 / 7); }", (), ()),
        (
            """
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            void main() { print_int(fib(12)); }
            """,
            (),
            (),
        ),
        (
            """
            void main() {
                int i;
                int t = 0;
                for (i = 0; i < 50; i = i + 1) {
                    if (i % 3 == 0 && i % 5 == 0) { t = t + 100; }
                    else if (i % 3 == 0) { t = t + 1; }
                    else { t = t - 1; }
                }
                print_int(t);
            }
            """,
            (),
            (),
        ),
        (
            """
            int sq(int x) { return x * x; }
            int tw(int x) { return 2 * x; }
            void main() {
                fnptr f = &sq;
                if (str_to_int(arg_str(0)) > 5) { f = &tw; }
                print_int(f(10));
            }
            """,
            ("9",),
            (),
        ),
        (
            """
            void main() {
                str line = read_line();
                print_int(strlen(line) * (3 + 4));
            }
            """,
            (),
            ("hello",),
        ),
    ]

    @pytest.mark.parametrize("source,argv,stdin", CORPUS)
    def test_output_identical(self, source, argv, stdin):
        plain = compile_source(source)
        plain_result = run(plain, argv, stdin)

        module, _ = optimized(source)
        optimized_result = run(module, argv, stdin)

        assert optimized_result[0] == plain_result[0]  # exit code
        assert optimized_result[1] == plain_result[1]  # stdout

    @pytest.mark.parametrize("source,argv,stdin", CORPUS)
    def test_never_slower(self, source, argv, stdin):
        plain = compile_source(source)
        _, _, plain_count = run(plain, argv, stdin)
        module, _ = optimized(source)
        _, _, optimized_count = run(module, argv, stdin)
        assert optimized_count <= plain_count


class TestPipelineIntegration:
    def test_programs_survive_optimisation(self):
        """Every shipped program model still behaves after optimisation."""
        from repro.autopriv import transform_module
        from repro.chronopriv import instrument_module
        from repro.oskernel.setup import build_kernel
        from repro.programs import spec_by_name

        for name in ("ping", "thttpd"):
            spec = spec_by_name(name)
            module = compile_source(spec.source, spec.name)
            optimize_module(module)
            transform_module(module, spec.permitted)
            instrument_module(module)
            verify_module(module)
            kernel = build_kernel()
            process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
            vm = Interpreter(
                module, kernel, process, argv=list(spec.argv), stdin=list(spec.stdin)
            )
            vm.env.update({k: list(v) if isinstance(v, list) else v
                           for k, v in spec.env.items()})
            if spec.setup:
                spec.setup(kernel, vm)
            assert vm.run() == spec.expected_exit
