"""The IR verifier: every violation class it must catch."""

import pytest

from repro.ir import (
    Branch,
    Call,
    ConstantInt,
    I64,
    IRBuilder,
    Jump,
    Module,
    Ret,
    VOID,
    VerificationError,
    verify_module,
)


def fresh():
    module = Module("m")
    function = module.add_function("f", I64, [I64], ["x"])
    block = function.add_block("entry")
    return module, function, block


class TestVerifier:
    def test_clean_module_passes(self):
        module, function, block = fresh()
        IRBuilder(block).ret(0)
        verify_module(module)

    def test_missing_terminator(self):
        module, function, block = fresh()
        IRBuilder(block).add(1, 2)
        with pytest.raises(VerificationError, match="lacks a terminator"):
            verify_module(module)

    def test_foreign_branch_target(self):
        module, function, block = fresh()
        other_module = Module("other")
        other_function = other_module.add_function("g", VOID, [])
        foreign = other_function.add_block("foreign")
        block.append(Jump(foreign))
        with pytest.raises(VerificationError, match="branch target"):
            verify_module(module)

    def test_cross_function_operand(self):
        module, function, block = fresh()
        other = module.add_function("g", I64, [I64], ["y"])
        builder = IRBuilder(block)
        builder.ret(other.arguments[0])  # uses another function's argument
        with pytest.raises(VerificationError, match="defined in another function"):
            verify_module(module)

    def test_call_arity_checked(self):
        module, function, block = fresh()
        callee = module.declare("ext", I64, [I64, I64])
        builder = IRBuilder(block)
        block.append(Call(callee.ref(), [ConstantInt(I64, 1)], I64))
        builder.ret(0)
        with pytest.raises(VerificationError, match="passes 1 args"):
            verify_module(module)

    def test_vararg_call_arity_unchecked(self):
        module, function, block = fresh()
        callee = module.declare("printf", I64, [], vararg=True)
        builder = IRBuilder(block)
        builder.call(callee, [1, 2, 3])
        builder.ret(0)
        verify_module(module)

    def test_branch_condition_must_be_i1(self):
        module, function, block = fresh()
        then_block = function.add_block("then")
        else_block = function.add_block("else")
        IRBuilder(then_block).ret(0)
        IRBuilder(else_block).ret(0)
        block.append(Branch(ConstantInt(I64, 1), then_block, else_block))
        with pytest.raises(VerificationError, match="not i1"):
            verify_module(module)

    def test_reports_all_problems_at_once(self):
        module, function, block = fresh()
        IRBuilder(block).add(1, 2)  # no terminator
        other = function.add_block("other")
        IRBuilder(other).mul(3, 4)  # no terminator either
        with pytest.raises(VerificationError) as excinfo:
            verify_module(module)
        assert len(excinfo.value.problems) >= 2

    def test_declarations_skipped(self):
        module = Module("m")
        module.declare("ext", I64, [I64])
        verify_module(module)
