"""The run ledger: capture, load, structural diff, and the CLI gate."""

import dataclasses
import io
import json

import pytest

from repro.cli import main
from repro.core import PrivAnalyzer
from repro.core.ledger import (
    DiffFinding,
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    capture_analysis,
    capture_rosa,
    diff_ledgers,
)
from repro.programs import spec_by_name
from repro.rosa import SearchBudget, check
from repro.rosa.dsl import parse_query
from repro.telemetry import ManualClock, Telemetry

pytestmark = pytest.mark.telemetry


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """One ping analysis captured twice — a baseline and an identical rerun."""
    telemetry = Telemetry.enabled(clock=ManualClock(tick=0.001), audit=True)
    analyzer = PrivAnalyzer(telemetry=telemetry)
    analysis = analyzer.analyze(spec_by_name("ping"))
    root = tmp_path_factory.mktemp("ledgers")
    kwargs = dict(
        cache_stats=analyzer.engine.cache_stats(),
        cli_args={"program": "ping"},
        timestamp=1234.5,
    )
    old = capture_analysis(root / "run1", analysis, telemetry, **kwargs)
    new = capture_analysis(root / "run2", analysis, telemetry, **kwargs)
    return old, new


def reload_with(ledger, filename, mutate):
    """Reload the ledger with one artifact rewritten through ``mutate``.

    ``RunLedger.load`` reads everything eagerly, so the original file is
    restored afterwards — the module-scoped fixture stays pristine.
    """
    path = ledger.root / filename
    original = path.read_text()
    data = json.loads(original)
    mutate(data)
    path.write_text(json.dumps(data))
    try:
        return RunLedger.load(ledger.root)
    finally:
        path.write_text(original)


class TestCapture:
    def test_artifact_files_and_manifest(self, captured):
        old, _ = captured
        for name in (
            "manifest.json", "spans.jsonl", "trace.perfetto.json",
            "metrics.json", "metrics.prom", "audit.jsonl", "syscalls.json",
            "exposure.json", "verdicts.json", "cache.json",
        ):
            assert (old.root / name).exists(), name
        assert old.manifest["schema"] == LEDGER_SCHEMA_VERSION
        assert old.manifest["kind"] == "analyze"
        assert old.manifest["program"] == "ping"
        assert old.manifest["created_unix"] == 1234.5
        assert old.manifest["cli"] == {"program": "ping"}
        assert set(old.manifest["files"]) >= {"spans.jsonl", "verdicts.json"}

    def test_loaded_ledger_contents(self, captured):
        old, _ = captured
        assert old.program == "ping"
        # One record per phase x attack pair, four attacks per phase.
        assert len(old.verdicts) == 4 * len(old.exposure["phases"])
        assert all(
            record["verdict"] in ("vulnerable", "invulnerable", "timeout")
            for record in old.verdicts
        )
        assert 0.0 <= old.exposure["invulnerable_window"] <= 1.0
        stages = old.stage_durations()
        assert "pipeline.analyze" in stages and "compile" in stages
        assert old.syscalls["by_credential"]  # the kernel ran under audit
        assert old.cache["enabled"] is True

    def test_perfetto_artifact_is_an_event_array(self, captured):
        old, _ = captured
        events = json.loads((old.root / "trace.perfetto.json").read_text())
        assert isinstance(events, list)
        assert any(event["ph"] == "X" for event in events)

    def test_load_rejects_non_ledger_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a run ledger"):
            RunLedger.load(tmp_path)


class TestDiff:
    def test_identical_runs_are_clean(self, captured):
        old, new = captured
        diff = diff_ledgers(old, new)
        assert diff.clean
        assert diff.exit_code == 0
        assert diff.findings == []
        assert "ledgers match" in diff.render()

    def test_verdict_flip_is_a_regression(self, captured):
        old, new = captured
        before = new.verdicts[0]["verdict"]
        after = "timeout" if before != "timeout" else "vulnerable"
        flipped = reload_with(
            new, "verdicts.json",
            lambda data: data[0].__setitem__("verdict", after),
        )
        diff = diff_ledgers(old, flipped)
        assert not diff.clean
        messages = [f.message for f in diff.regressions]
        assert any(f"verdict flip {before} -> {after}" in m for m in messages)

    def test_exposure_drift_beyond_tolerance_is_a_regression(self, captured):
        old, new = captured
        drifted = reload_with(
            new, "exposure.json",
            lambda data: data["windows"].__setitem__(
                "1", data["windows"]["1"] + 0.3
            ),
        )
        diff = diff_ledgers(old, drifted)
        assert any(
            f.kind == "exposure" and "attack 1" in f.message
            for f in diff.regressions
        )
        # A wide tolerance forgives the same drift.
        assert not [
            f for f in diff_ledgers(old, drifted, tolerance=0.5).regressions
            if f.kind == "exposure"
        ]

    def test_phase_credential_change_is_a_regression(self, captured):
        old, new = captured
        mutated = reload_with(
            new, "exposure.json",
            lambda data: data["phases"][0].__setitem__("uids", [0, 0, 0]),
        )
        diff = diff_ledgers(old, mutated)
        assert any("uids changed" in f.message for f in diff.regressions)

    def test_stage_slowdown_beyond_perf_tolerance_is_a_regression(self, captured):
        old, new = captured
        path = new.root / "spans.jsonl"
        spans = [json.loads(line) for line in path.read_text().splitlines()]
        for span in spans:
            if span["name"] == "chronopriv-run":
                span["duration"] = span["duration"] * 100 + 1.0
        path.write_text("\n".join(json.dumps(span) for span in spans) + "\n")
        slowed = RunLedger.load(new.root)
        diff = diff_ledgers(old, slowed, perf_tolerance=1.0)
        assert any(
            f.kind == "perf" and "chronopriv-run" in f.message
            for f in diff.regressions
        )
        # Restore the artifact for the other module-scoped tests.
        for span in spans:
            if span["name"] == "chronopriv-run":
                span["duration"] = (span["duration"] - 1.0) / 100
        path.write_text("\n".join(json.dumps(span) for span in spans) + "\n")

    def test_syscall_surface_change_is_a_regression(self, captured):
        old, new = captured
        def drop_one(data):
            key = sorted(data["by_credential"])[0]
            data["by_credential"][key] = data["by_credential"][key][:-1]
        shrunk = reload_with(new, "syscalls.json", drop_one)
        diff = diff_ledgers(old, shrunk)
        assert any(
            f.kind == "syscalls" and "vanished" in f.message
            for f in diff.regressions
        )

    def test_counter_drift_is_a_nongating_change(self, captured):
        old, new = captured
        bumped = reload_with(
            new, "metrics.json",
            lambda data: data["vm.instructions_executed"].__setitem__(
                "value", data["vm.instructions_executed"]["value"] + 1
            ),
        )
        diff = diff_ledgers(old, bumped)
        assert diff.clean  # changes never gate
        assert any(
            f.severity == "change" and "vm.instructions_executed" in f.message
            for f in diff.findings
        )

    def test_schema_mismatch_refuses_comparison(self, captured):
        # ``load`` rejects schemas newer than the tool outright, so the
        # mismatched ledger is built directly: diff must still refuse
        # the comparison whenever the versions differ.
        old, new = captured
        alien = dataclasses.replace(
            new, manifest={**new.manifest, "schema": 99}
        )
        diff = diff_ledgers(old, alien)
        assert [f.kind for f in diff.regressions] == ["manifest"]

    def test_newer_schema_refused_at_load(self, captured):
        _old, new = captured
        with pytest.raises(ValueError, match="newer than this tool"):
            reload_with(
                new,
                "manifest.json",
                lambda data: data.__setitem__("schema", 99),
            )

    def test_program_mismatch_is_a_regression(self, captured):
        old, new = captured
        renamed = reload_with(
            new, "manifest.json", lambda data: data.__setitem__("program", "su")
        )
        diff = diff_ledgers(old, renamed)
        assert any(f.kind == "manifest" for f in diff.regressions)

    def test_json_rendering(self, captured):
        old, new = captured
        document = json.loads(diff_ledgers(old, new).to_json())
        assert document["regressions"] == 0
        assert document["findings"] == []

    def test_finding_to_dict(self):
        finding = DiffFinding("regression", "verdict", "flip")
        assert finding.to_dict() == {
            "severity": "regression", "kind": "verdict", "message": "flip",
        }


def fleet_section(execute, tasks=None):
    """A ``workers.json``-shaped fleet dict with the given execute times."""
    tasks = tasks or [1] * len(execute)
    return {
        "capsule_schema": 1,
        "mode": "process",
        "workers": {
            f"worker:{i}": {
                "tasks": tasks[i],
                "execute_seconds": execute[i],
                "queue_wait_seconds": 0.0,
                "states_explored": 100,
                "spans": 1,
                "samples": 0,
                "profile_records": 0,
                "audit_records": 0,
                "syscalls": 0,
                "names": [f"pid:{1000 + i}"],
            }
            for i in range(len(execute))
        },
    }


class TestFleetLedger:
    """The per-worker ledger section: capture, reload, and worker diffs."""

    @pytest.fixture(scope="class")
    def rosa_run(self):
        telemetry = Telemetry.enabled(clock=ManualClock(tick=0.001))
        with open("examples/queries/figure2.rosa") as handle:
            query = parse_query(handle.read(), name="figure2")
        budget = SearchBudget(max_states=50_000, max_seconds=30.0)
        report = check(query, budget, tracer=telemetry.tracer)
        return report, telemetry

    def capture(self, directory, rosa_run, fleet):
        report, telemetry = rosa_run
        return capture_rosa(
            directory, [report], telemetry, fleet=fleet, timestamp=1234.5
        )

    def test_workers_json_round_trips(self, tmp_path, rosa_run):
        fleet = fleet_section([0.5, 0.25], tasks=[2, 1])
        ledger = self.capture(tmp_path / "run", rosa_run, fleet)
        assert (ledger.root / "workers.json").exists()
        assert "workers.json" in ledger.manifest["files"]
        assert ledger.workers == fleet
        assert RunLedger.load(ledger.root).workers == fleet

    def test_serial_runs_carry_no_workers_section(self, tmp_path, rosa_run):
        ledger = self.capture(tmp_path / "run", rosa_run, None)
        assert not (ledger.root / "workers.json").exists()
        assert ledger.workers is None

    def test_identical_fleets_diff_clean(self, tmp_path, rosa_run):
        fleet = fleet_section([0.5, 0.5])
        old = self.capture(tmp_path / "run1", rosa_run, fleet)
        new = self.capture(tmp_path / "run2", rosa_run, fleet)
        diff = diff_ledgers(old, new)
        assert diff.clean
        assert not [f for f in diff.findings if f.kind == "workers"]

    def test_one_sided_fleet_section_is_informational(self, tmp_path, rosa_run):
        old = self.capture(tmp_path / "run1", rosa_run, fleet_section([0.5]))
        new = self.capture(tmp_path / "run2", rosa_run, None)
        diff = diff_ledgers(old, new)
        assert diff.clean  # info never gates
        assert any(
            f.kind == "workers" and "only one ledger" in f.message
            for f in diff.findings
        )

    def test_vanished_worker_is_a_change(self, tmp_path, rosa_run):
        old = self.capture(tmp_path / "run1", rosa_run, fleet_section([0.5, 0.5]))
        new = self.capture(tmp_path / "run2", rosa_run, fleet_section([0.5]))
        diff = diff_ledgers(old, new)
        assert diff.clean
        assert any(
            f.severity == "change" and "worker:1 vanished" in f.message
            for f in diff.findings
        )

    def test_worker_execute_slowdown_is_a_regression(self, tmp_path, rosa_run):
        old = self.capture(tmp_path / "run1", rosa_run, fleet_section([0.1, 0.1]))
        new = self.capture(tmp_path / "run2", rosa_run, fleet_section([0.5, 0.1]))
        diff = diff_ledgers(old, new, perf_tolerance=0.25)
        assert any(
            f.kind == "workers" and "worker:0: execute" in f.message
            for f in diff.regressions
        )
        # A wide tolerance forgives the same slowdown.
        wide = diff_ledgers(old, new, perf_tolerance=10.0)
        assert not [f for f in wide.regressions if f.kind == "workers"]

    def test_subfloor_slowdown_is_forgiven(self, tmp_path, rosa_run):
        # 3x slower but under the absolute floor: CI noise, not a gate.
        old = self.capture(tmp_path / "run1", rosa_run, fleet_section([0.01]))
        new = self.capture(tmp_path / "run2", rosa_run, fleet_section([0.03]))
        diff = diff_ledgers(old, new, perf_tolerance=0.25)
        assert not [f for f in diff.regressions if f.kind == "workers"]

    def test_task_count_drift_is_informational(self, tmp_path, rosa_run):
        old = self.capture(
            tmp_path / "run1", rosa_run, fleet_section([0.5, 0.5], tasks=[1, 1])
        )
        new = self.capture(
            tmp_path / "run2", rosa_run, fleet_section([0.5, 0.5], tasks=[2, 0])
        )
        diff = diff_ledgers(old, new)
        assert diff.clean
        messages = [f.message for f in diff.findings if f.kind == "workers"]
        assert any("worker:0: tasks 1 -> 2" in m for m in messages)

    def test_load_imbalance_drift_is_a_change(self, tmp_path, rosa_run):
        # worker:1 going near-idle skews max/mean without any worker
        # slowing down, so this surfaces as a change, not a regression.
        old = self.capture(tmp_path / "run1", rosa_run, fleet_section([0.5, 0.5]))
        new = self.capture(tmp_path / "run2", rosa_run, fleet_section([0.5, 0.01]))
        diff = diff_ledgers(old, new, perf_tolerance=0.25)
        assert not [f for f in diff.regressions if f.kind == "workers"]
        assert any(
            f.severity == "change" and "load imbalance" in f.message
            for f in diff.findings
        )


class TestCliLedger:
    def test_analyze_capture_and_clean_diff(self, tmp_path):
        run1, run2 = tmp_path / "run1", tmp_path / "run2"
        assert run_cli("analyze", "ping", "--ledger", str(run1))[0] == 0
        assert run_cli("analyze", "ping", "--ledger", str(run2))[0] == 0
        code, out = run_cli("diff", str(run1), str(run2))
        assert code == 0
        assert "0 regression(s)" in out

    def test_diff_flags_perturbed_ledger_and_names_the_regression(self, tmp_path):
        run1, run2 = tmp_path / "run1", tmp_path / "run2"
        run_cli("analyze", "ping", "--ledger", str(run1))
        run_cli("analyze", "ping", "--ledger", str(run2))
        verdicts = json.loads((run2 / "verdicts.json").read_text())
        before = verdicts[3]["verdict"]
        after = "timeout" if before != "timeout" else "vulnerable"
        verdicts[3]["verdict"] = after
        (run2 / "verdicts.json").write_text(json.dumps(verdicts))
        code, out = run_cli("diff", str(run1), str(run2))
        assert code == 1
        assert f"verdict flip {before} -> {after}" in out

    def test_diff_json_format(self, tmp_path):
        run1 = tmp_path / "run1"
        run_cli("analyze", "ping", "--ledger", str(run1))
        code, out = run_cli("diff", str(run1), str(run1), "--format", "json")
        assert code == 0
        assert json.loads(out)["regressions"] == 0

    def test_diff_missing_ledger_dies(self, tmp_path):
        with pytest.raises(SystemExit, match="not a run ledger"):
            run_cli("diff", str(tmp_path / "nope"), str(tmp_path / "nope2"))

    def test_rosa_ledger_capture(self, tmp_path):
        ledger_dir = tmp_path / "rosa-run"
        code, _ = run_cli(
            "rosa", "examples/queries/figure2.rosa", "--ledger", str(ledger_dir)
        )
        assert code == 1  # vulnerable query keeps its exit code
        ledger = RunLedger.load(ledger_dir)
        assert ledger.manifest["kind"] == "rosa"
        assert len(ledger.verdicts) == 1
        assert ledger.verdicts[0]["verdict"] == "vulnerable"
        assert ledger.verdicts[0]["witness"] == ["chown", "chmod", "open"]

    def test_metrics_out_flag_writes_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        code, _ = run_cli("analyze", "ping", "--metrics-out", str(path))
        assert code == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(entry["name"] == "vm.instructions_executed" for entry in lines)

    def test_prometheus_out_flag(self, tmp_path):
        path = tmp_path / "metrics.prom"
        code, _ = run_cli("analyze", "ping", "--prometheus-out", str(path))
        assert code == 0
        assert "# TYPE privanalyzer_rosa_queries_total counter" in path.read_text()

    def test_perfetto_out_flag(self, tmp_path):
        path = tmp_path / "trace.json"
        code, _ = run_cli("analyze", "ping", "--perfetto-out", str(path))
        assert code == 0
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        assert any(
            event.get("name") == "pipeline.analyze" for event in events
        )

    def test_rosa_progress_renders_to_stderr(self, capsys):
        code, _ = run_cli(
            "rosa", "examples/queries/figure2.rosa",
            "--progress", "--progress-interval", "1",
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "rosa: " in err and "explored" in err and "budget" in err
