"""Differential testing: ROSA's model must agree with the kernel.

ROSA is PrivAnalyzer's specification of what an attacker can do; the
simulated kernel is what programs actually run on.  If the two diverge,
PrivAnalyzer's verdicts are wrong about the very system it measures.
These property tests throw randomized DAC scenarios at both
implementations and require identical answers.
"""

from hypothesis import given, settings, strategies as st

from repro.caps import Capability, CapabilitySet, Credentials
from repro.oskernel import permissions as kernel_perms
from repro.oskernel.filesystem import Inode, REGULAR
from repro.rosa import model, permissions as rosa_perms

small_ids = st.sampled_from([0, 15, 42, 998, 1000, 1001, 2000])
modes = st.integers(min_value=0, max_value=0o777)
cap_subsets = st.frozensets(
    st.sampled_from(
        [
            Capability.CAP_DAC_OVERRIDE,
            Capability.CAP_DAC_READ_SEARCH,
            Capability.CAP_FOWNER,
            Capability.CAP_CHOWN,
            Capability.CAP_KILL,
            Capability.CAP_SETUID,
            Capability.CAP_SETGID,
            Capability.CAP_NET_BIND_SERVICE,
        ]
    ),
    max_size=4,
)


def make_pair(euid, egid, supplementary, owner, group, mode):
    """The same subject/object in both representations."""
    rosa_proc = model.process(
        1,
        euid=euid, ruid=euid, suid=euid,
        egid=egid, rgid=egid, sgid=egid,
        supplementary=supplementary,
    )
    rosa_file = model.file_obj(2, name="f", owner=owner, group=group, perms=mode)
    creds = Credentials.for_user(euid, egid, supplementary)
    inode = Inode(ino=2, kind=REGULAR, owner=owner, group=group, mode=mode)
    return rosa_proc, rosa_file, creds, inode


@settings(max_examples=300)
@given(small_ids, small_ids, st.frozensets(small_ids, max_size=2),
       small_ids, small_ids, modes, cap_subsets)
def test_read_agreement(euid, egid, supp, owner, group, mode, caps):
    rosa_proc, rosa_file, creds, inode = make_pair(euid, egid, supp, owner, group, mode)
    capset = CapabilitySet(caps)
    assert rosa_perms.may_read(rosa_proc, rosa_file, caps) == kernel_perms.may_read(
        inode, creds, capset
    )


@settings(max_examples=300)
@given(small_ids, small_ids, st.frozensets(small_ids, max_size=2),
       small_ids, small_ids, modes, cap_subsets)
def test_write_agreement(euid, egid, supp, owner, group, mode, caps):
    rosa_proc, rosa_file, creds, inode = make_pair(euid, egid, supp, owner, group, mode)
    capset = CapabilitySet(caps)
    assert rosa_perms.may_write(rosa_proc, rosa_file, caps) == kernel_perms.may_write(
        inode, creds, capset
    )


@settings(max_examples=300)
@given(small_ids, small_ids, st.frozensets(small_ids, max_size=2),
       small_ids, small_ids, modes, cap_subsets)
def test_search_agreement(euid, egid, supp, owner, group, mode, caps):
    rosa_proc, rosa_file, creds, inode = make_pair(euid, egid, supp, owner, group, mode)
    capset = CapabilitySet(caps)
    assert rosa_perms.may_search(rosa_proc, rosa_file, caps) == kernel_perms.may_search(
        inode, creds, capset
    )


@settings(max_examples=300)
@given(small_ids, small_ids, small_ids, small_ids, small_ids, small_ids, cap_subsets)
def test_chown_agreement(euid, egid, owner, group, new_owner, new_group, caps):
    rosa_proc, rosa_file, creds, inode = make_pair(
        euid, egid, frozenset(), owner, group, 0o644
    )
    capset = CapabilitySet(caps)
    assert rosa_perms.may_chown(
        rosa_proc, rosa_file, new_owner, new_group, caps
    ) == kernel_perms.may_chown(inode, new_owner, new_group, creds, capset)


@settings(max_examples=300)
@given(small_ids, small_ids, small_ids, small_ids, cap_subsets)
def test_chmod_agreement(euid, egid, owner, group, caps):
    rosa_proc, rosa_file, creds, inode = make_pair(
        euid, egid, frozenset(), owner, group, 0o644
    )
    capset = CapabilitySet(caps)
    assert rosa_perms.may_chmod(rosa_proc, rosa_file, caps) == kernel_perms.may_chmod(
        inode, creds, capset
    )


@settings(max_examples=300)
@given(small_ids, small_ids, small_ids, small_ids, small_ids, small_ids, cap_subsets)
def test_signal_agreement(s_euid, s_ruid, v_ruid, v_suid, v_euid, v_egid, caps):
    sender = model.process(
        1, euid=s_euid, ruid=s_ruid, suid=s_ruid,
        egid=0, rgid=0, sgid=0,
    )
    victim = model.process(
        2, euid=v_euid, ruid=v_ruid, suid=v_suid,
        egid=v_egid, rgid=v_egid, sgid=v_egid,
    )
    sender_creds = Credentials(ruid=s_ruid, euid=s_euid, suid=s_ruid,
                               rgid=0, egid=0, sgid=0)
    victim_creds = Credentials(ruid=v_ruid, euid=v_euid, suid=v_suid,
                               rgid=v_egid, egid=v_egid, sgid=v_egid)
    capset = CapabilitySet(caps)
    assert rosa_perms.may_signal(sender, victim, caps) == kernel_perms.may_signal(
        sender_creds, victim_creds, capset
    )


@settings(max_examples=200)
@given(st.integers(min_value=-5, max_value=3000), cap_subsets)
def test_bind_agreement(port, caps):
    capset = CapabilitySet(caps)
    assert rosa_perms.may_bind(port, caps) == kernel_perms.may_bind(port, capset)


@settings(max_examples=300)
@given(small_ids, small_ids, small_ids, small_ids, cap_subsets)
def test_setuid_agreement(euid, ruid, suid, target, caps):
    rosa_proc = model.process(
        1, euid=euid, ruid=ruid, suid=suid, egid=0, rgid=0, sgid=0
    )
    creds = Credentials(ruid=ruid, euid=euid, suid=suid, rgid=0, egid=0, sgid=0)
    rosa_answer = rosa_perms.may_set_uid(rosa_proc, target, caps)
    kernel_answer = (
        Capability.CAP_SETUID in caps or creds.may_set_uid_unprivileged(target)
    )
    assert rosa_answer == kernel_answer
