"""File-system structure: paths, inodes, structural mutation."""

import pytest

from repro.oskernel import FileSystem, SyscallError
from repro.oskernel.errors import EEXIST, EISDIR, ENOENT, ENOTDIR
from repro.oskernel.filesystem import split_path


@pytest.fixture
def fs():
    filesystem = FileSystem()
    filesystem.mkdir("/etc", 0, 0, 0o755)
    filesystem.create_file("/etc/shadow", 0, 42, 0o640, "secret")
    filesystem.mkdir("/etc/sub", 0, 0, 0o755)
    return filesystem


class TestPaths:
    def test_split_absolute(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []
        assert split_path("//a//b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(SyscallError) as excinfo:
            split_path("a/b")
        assert excinfo.value.errno_value == ENOENT


class TestResolution:
    def test_resolve_file(self, fs):
        inode = fs.resolve("/etc/shadow")
        assert inode.content == "secret"
        assert inode.group == 42

    def test_resolve_root(self, fs):
        assert fs.resolve("/").is_dir

    def test_missing_component(self, fs):
        with pytest.raises(SyscallError) as excinfo:
            fs.resolve("/etc/missing")
        assert excinfo.value.errno_value == ENOENT

    def test_file_used_as_directory(self, fs):
        with pytest.raises(SyscallError) as excinfo:
            fs.resolve("/etc/shadow/deeper")
        assert excinfo.value.errno_value == ENOTDIR

    def test_resolve_parent(self, fs):
        parent, name = fs.resolve_parent("/etc/shadow")
        assert parent.is_dir
        assert name == "shadow"

    def test_lookup_directories_lists_traversal(self, fs):
        directories = fs.lookup_directories("/etc/sub/x")
        assert [d.ino for d in directories] == [
            fs.resolve("/").ino,
            fs.resolve("/etc").ino,
            fs.resolve("/etc/sub").ino,
        ]

    def test_exists(self, fs):
        assert fs.exists("/etc/shadow")
        assert not fs.exists("/etc/missing")


class TestMutation:
    def test_create_duplicate_rejected(self, fs):
        with pytest.raises(SyscallError) as excinfo:
            fs.create_file("/etc/shadow", 0, 0, 0o644)
        assert excinfo.value.errno_value == EEXIST

    def test_mkdir_duplicate_rejected(self, fs):
        with pytest.raises(SyscallError):
            fs.mkdir("/etc", 0, 0, 0o755)

    def test_unlink(self, fs):
        fs.unlink("/etc/shadow")
        assert not fs.exists("/etc/shadow")

    def test_unlink_directory_rejected(self, fs):
        with pytest.raises(SyscallError) as excinfo:
            fs.unlink("/etc/sub")
        assert excinfo.value.errno_value == EISDIR

    def test_rename_moves_inode(self, fs):
        original = fs.resolve("/etc/shadow").ino
        fs.rename("/etc/shadow", "/etc/sub/shadow2")
        assert not fs.exists("/etc/shadow")
        assert fs.resolve("/etc/sub/shadow2").ino == original

    def test_rename_missing_source(self, fs):
        with pytest.raises(SyscallError):
            fs.rename("/etc/nope", "/etc/other")

    def test_stat(self, fs):
        stat = fs.stat("/etc/shadow")
        assert stat.owner == 0
        assert stat.group == 42
        assert stat.mode == 0o640
        assert stat.size == len("secret")

    def test_stale_inode(self, fs):
        with pytest.raises(SyscallError):
            fs.inode(9999)
