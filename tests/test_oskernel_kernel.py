"""Kernel syscall semantics: credentials, capabilities, files, signals, sockets."""

import pytest

from repro.caps import Capability, CapabilitySet
from repro.oskernel import KEEP_ID, Kernel, SyscallError, ZOMBIE, signals
from repro.oskernel.errors import (
    EACCES,
    EADDRINUSE,
    EBADF,
    EINVAL,
    EPERM,
    ESRCH,
)
from repro.oskernel.setup import (
    GID_SHADOW,
    GID_USER,
    UID_OTHER,
    UID_USER,
    build_kernel,
)


@pytest.fixture
def kernel():
    return build_kernel()


def spawn(kernel, *caps, uid=UID_USER, gid=GID_USER, lockdown=True, supplementary=()):
    process = kernel.spawn(
        uid, gid, permitted=CapabilitySet.of(*caps), supplementary=supplementary
    )
    if lockdown:
        kernel.sys_prctl_lockdown(process.pid)
    return process


class TestCredentialSyscalls:
    def test_getters(self, kernel):
        process = spawn(kernel)
        assert kernel.sys_getuid(process.pid) == UID_USER
        assert kernel.sys_geteuid(process.pid) == UID_USER
        assert kernel.sys_getresuid(process.pid) == (UID_USER,) * 3
        assert kernel.sys_getresgid(process.pid) == (GID_USER,) * 3

    def test_setuid_privileged_sets_all(self, kernel):
        process = spawn(kernel, "CapSetuid")
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSetuid"))
        kernel.sys_setuid(process.pid, 0)
        assert process.creds.uid_triple == (0, 0, 0)

    def test_setuid_requires_effective_not_permitted(self, kernel):
        # Permitted but not raised: the syscall must fail.
        process = spawn(kernel, "CapSetuid")
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_setuid(process.pid, 0)
        assert excinfo.value.errno_value == EPERM

    def test_setuid_unprivileged_to_saved(self, kernel):
        process = spawn(kernel)
        process.creds = process.creds.replace(suid=UID_OTHER)
        kernel.sys_setuid(process.pid, UID_OTHER)
        assert process.creds.euid == UID_OTHER
        assert process.creds.ruid == UID_USER

    def test_seteuid_bounce_between_real_and_saved(self, kernel):
        process = spawn(kernel)
        process.creds = process.creds.replace(suid=UID_OTHER)
        kernel.sys_seteuid(process.pid, UID_OTHER)
        kernel.sys_seteuid(process.pid, UID_USER)
        assert process.creds.euid == UID_USER

    def test_setresuid_keep(self, kernel):
        process = spawn(kernel, "CapSetuid")
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSetuid"))
        kernel.sys_setresuid(process.pid, KEEP_ID, 998, KEEP_ID)
        assert process.creds.uid_triple == (UID_USER, 998, UID_USER)

    def test_setresuid_unprivileged_foreign_rejected(self, kernel):
        process = spawn(kernel)
        with pytest.raises(SyscallError):
            kernel.sys_setresuid(process.pid, 0, 0, 0)

    def test_setgid_family(self, kernel):
        process = spawn(kernel, "CapSetgid")
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSetgid"))
        kernel.sys_setgid(process.pid, 42)
        assert process.creds.gid_triple == (42, 42, 42)

    def test_setgroups_needs_cap(self, kernel):
        process = spawn(kernel)
        with pytest.raises(SyscallError):
            kernel.sys_setgroups(process.pid, (42,))
        privileged = spawn(kernel, "CapSetgid")
        kernel.sys_priv_raise(privileged.pid, CapabilitySet.of("CapSetgid"))
        kernel.sys_setgroups(privileged.pid, (42,))
        assert privileged.creds.supplementary == frozenset({42})

    def test_unknown_pid(self, kernel):
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_getuid(424242)
        assert excinfo.value.errno_value == ESRCH


class TestSetuidFixup:
    """The kernel's root-uid capability coupling, and the prctl opt-out."""

    def test_leaving_root_clears_caps_without_lockdown(self, kernel):
        process = spawn(kernel, "CapSetuid", uid=0, gid=0, lockdown=False)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSetuid"))
        kernel.sys_setuid(process.pid, UID_USER)
        assert not process.caps.permitted
        assert not process.caps.effective

    def test_lockdown_preserves_caps_across_uid_change(self, kernel):
        process = spawn(kernel, "CapSetuid", uid=0, gid=0, lockdown=True)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSetuid"))
        kernel.sys_setuid(process.pid, UID_USER)
        assert "CapSetuid" in process.caps.permitted

    def test_euid_to_zero_fills_effective_without_lockdown(self, kernel):
        process = spawn(kernel, "CapSetuid", "CapChown", lockdown=False)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSetuid"))
        kernel.sys_setuid(process.pid, 0)
        # Old-style root semantics: effective filled from permitted.
        assert "CapChown" in process.caps.effective

    def test_euid_to_zero_with_lockdown_keeps_effective(self, kernel):
        process = spawn(kernel, "CapSetuid", "CapChown", lockdown=True)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSetuid"))
        kernel.sys_setuid(process.pid, 0)
        assert "CapChown" not in process.caps.effective


class TestPrivWrappers:
    def test_raise_lower_remove_cycle(self, kernel):
        process = spawn(kernel, "CapChown")
        caps = CapabilitySet.of("CapChown")
        kernel.sys_priv_raise(process.pid, caps)
        assert "CapChown" in process.caps.effective
        kernel.sys_priv_lower(process.pid, caps)
        assert "CapChown" not in process.caps.effective
        assert "CapChown" in process.caps.permitted
        kernel.sys_priv_remove(process.pid, caps)
        assert "CapChown" not in process.caps.permitted
        with pytest.raises(SyscallError):
            kernel.sys_priv_raise(process.pid, caps)

    def test_observer_notified_on_changes(self, kernel):
        events = []
        kernel.cred_observers.append(lambda p: events.append(p.caps.permitted))
        process = spawn(kernel, "CapChown")
        kernel.sys_priv_remove(process.pid, CapabilitySet.of("CapChown"))
        assert events and not events[-1]


class TestFileSyscalls:
    def test_open_read_denied_then_allowed(self, kernel):
        process = spawn(kernel, "CapDacReadSearch")
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_open(process.pid, "/etc/shadow", "r")
        assert excinfo.value.errno_value == EACCES
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapDacReadSearch"))
        fd = kernel.sys_open(process.pid, "/etc/shadow", "r")
        assert kernel.sys_read(process.pid, fd).startswith("root:")

    def test_dac_read_search_does_not_grant_write(self, kernel):
        process = spawn(kernel, "CapDacReadSearch")
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapDacReadSearch"))
        with pytest.raises(SyscallError):
            kernel.sys_open(process.pid, "/etc/shadow", "w")

    def test_group_access_via_supplementary(self, kernel):
        process = spawn(kernel, supplementary=(GID_SHADOW,))
        fd = kernel.sys_open(process.pid, "/etc/shadow", "r")
        assert fd >= 3

    def test_create_requires_parent_write(self, kernel):
        process = spawn(kernel)
        with pytest.raises(SyscallError):
            kernel.sys_open(process.pid, "/etc/newfile", "wc")
        fd = kernel.sys_open(process.pid, "/home/user/newfile", "wc", 0o600)
        assert fd >= 3
        stat = kernel.sys_stat(process.pid, "/home/user/newfile")
        assert stat.owner == UID_USER

    def test_write_and_read_roundtrip(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_open(process.pid, "/home/user/notes", "wcr", 0o600)
        kernel.sys_write(process.pid, fd, "hello")
        assert kernel.sys_read(process.pid, fd) == "hello"
        kernel.sys_truncate_fd(process.pid, fd)
        assert kernel.sys_read(process.pid, fd) == ""

    def test_read_on_writeonly_fd(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_open(process.pid, "/home/user/wonly", "wc")
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_read(process.pid, fd)
        assert excinfo.value.errno_value == EBADF

    def test_close_invalidates_fd(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_open(process.pid, "/etc/passwd", "r")
        kernel.sys_close(process.pid, fd)
        with pytest.raises(SyscallError):
            kernel.sys_read(process.pid, fd)

    def test_devmem_read_records_access(self, kernel):
        process = spawn(kernel, uid=0, gid=0)
        fd = kernel.sys_open(process.pid, "/dev/mem", "r")
        content = kernel.sys_read(process.pid, fd)
        assert "physical memory" in content
        assert kernel.devmem_reads == [process.pid]

    def test_devmem_write_corrupts_memory(self, kernel):
        process = spawn(kernel, uid=0, gid=0)
        fd = kernel.sys_open(process.pid, "/dev/mem", "w")
        kernel.sys_write(process.pid, fd, "pwned")
        assert kernel.physical_memory == "pwned"

    def test_devmem_denied_for_regular_user(self, kernel):
        process = spawn(kernel)
        with pytest.raises(SyscallError):
            kernel.sys_open(process.pid, "/dev/mem", "r")

    def test_chmod_needs_ownership_or_fowner(self, kernel):
        process = spawn(kernel, "CapFowner")
        with pytest.raises(SyscallError):
            kernel.sys_chmod(process.pid, "/etc/passwd", 0o666)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapFowner"))
        kernel.sys_chmod(process.pid, "/etc/passwd", 0o666)
        assert kernel.fs.resolve("/etc/passwd").mode == 0o666

    def test_chown_needs_cap(self, kernel):
        process = spawn(kernel, "CapChown")
        with pytest.raises(SyscallError):
            kernel.sys_chown(process.pid, "/etc/passwd", UID_USER, GID_USER)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapChown"))
        kernel.sys_chown(process.pid, "/etc/passwd", UID_USER, KEEP_ID)
        inode = kernel.fs.resolve("/etc/passwd")
        assert inode.owner == UID_USER
        assert inode.group == 0  # KEEP_ID left the group alone

    def test_fchmod_fchown_via_fd(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_open(process.pid, "/home/user/own", "wc", 0o600)
        kernel.sys_fchmod(process.pid, fd, 0o644)
        assert kernel.fs.resolve("/home/user/own").mode == 0o644
        kernel.sys_fchown(process.pid, fd, KEEP_ID, GID_USER)
        assert kernel.fs.resolve("/home/user/own").group == GID_USER

    def test_unlink_rename_respect_parent_write(self, kernel):
        process = spawn(kernel)
        with pytest.raises(SyscallError):
            kernel.sys_unlink(process.pid, "/etc/passwd")
        kernel.sys_open(process.pid, "/home/user/junk", "wc")
        kernel.sys_rename(process.pid, "/home/user/junk", "/home/user/junk2")
        kernel.sys_unlink(process.pid, "/home/user/junk2")
        assert not kernel.fs.exists("/home/user/junk2")

    def test_access_uses_real_ids(self, kernel):
        process = spawn(kernel)
        # euid switched to other, but access() judges by the real uid.
        process.creds = process.creds.replace(euid=UID_OTHER)
        kernel.sys_access(process.pid, "/home/user", "rw")
        with pytest.raises(SyscallError):
            kernel.sys_access(process.pid, "/home/other/payload.bin", "r")

    def test_stat_requires_search_permission(self, kernel):
        process = spawn(kernel)
        with pytest.raises(SyscallError):
            kernel.sys_stat(process.pid, "/home/other/payload.bin")

    def test_chroot_needs_cap(self, kernel):
        process = spawn(kernel, "CapSysChroot")
        with pytest.raises(SyscallError):
            kernel.sys_chroot(process.pid, "/srv/www")
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSysChroot"))
        kernel.sys_chroot(process.pid, "/srv/www")
        assert process.chroot_path == "/srv/www"

    def test_chroot_to_file_rejected(self, kernel):
        process = spawn(kernel, "CapSysChroot")
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapSysChroot"))
        with pytest.raises(SyscallError):
            kernel.sys_chroot(process.pid, "/etc/passwd")


class TestSockets:
    def test_bind_privileged_port(self, kernel):
        process = spawn(kernel, "CapNetBindService")
        fd = kernel.sys_socket(process.pid)
        with pytest.raises(SyscallError):
            kernel.sys_bind(process.pid, fd, 80)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapNetBindService"))
        kernel.sys_bind(process.pid, fd, 80)
        assert kernel.bound_ports[80] == process.pid

    def test_bind_address_in_use(self, kernel):
        a = spawn(kernel)
        b = spawn(kernel)
        fd_a = kernel.sys_socket(a.pid)
        kernel.sys_bind(a.pid, fd_a, 8080)
        fd_b = kernel.sys_socket(b.pid)
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_bind(b.pid, fd_b, 8080)
        assert excinfo.value.errno_value == EADDRINUSE

    def test_double_bind_rejected(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_socket(process.pid)
        kernel.sys_bind(process.pid, fd, 9000)
        with pytest.raises(SyscallError):
            kernel.sys_bind(process.pid, fd, 9001)

    def test_close_releases_port(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_socket(process.pid)
        kernel.sys_bind(process.pid, fd, 9000)
        kernel.sys_close(process.pid, fd)
        assert 9000 not in kernel.bound_ports

    def test_listen_requires_bound(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_socket(process.pid)
        with pytest.raises(SyscallError):
            kernel.sys_listen(process.pid, fd)
        kernel.sys_bind(process.pid, fd, 9000)
        kernel.sys_listen(process.pid, fd)

    def test_raw_socket_needs_cap(self, kernel):
        process = spawn(kernel, "CapNetRaw")
        with pytest.raises(SyscallError):
            kernel.sys_socket(process.pid, raw=True)
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapNetRaw"))
        assert kernel.sys_socket(process.pid, raw=True) >= 3

    def test_setsockopt_privileged_options(self, kernel):
        process = spawn(kernel, "CapNetAdmin")
        fd = kernel.sys_socket(process.pid)
        with pytest.raises(SyscallError):
            kernel.sys_setsockopt(process.pid, fd, "debug")
        kernel.sys_priv_raise(process.pid, CapabilitySet.of("CapNetAdmin"))
        kernel.sys_setsockopt(process.pid, fd, "debug")
        kernel.sys_setsockopt(process.pid, fd, "reuseaddr")  # unprivileged opt


class TestSignals:
    def test_kill_foreign_denied(self, kernel):
        attacker = spawn(kernel)
        victim = spawn(kernel, uid=UID_OTHER, gid=UID_OTHER)
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_kill(attacker.pid, victim.pid, signals.SIGKILL)
        assert excinfo.value.errno_value == EPERM

    def test_kill_own_process_fatal_default(self, kernel):
        sender = spawn(kernel)
        victim = spawn(kernel)
        kernel.sys_kill(sender.pid, victim.pid, signals.SIGTERM)
        assert victim.state == ZOMBIE
        assert victim.exit_signal == signals.SIGTERM

    def test_signal_zero_probes_only(self, kernel):
        sender = spawn(kernel)
        victim = spawn(kernel)
        kernel.sys_kill(sender.pid, victim.pid, 0)
        assert victim.alive

    def test_cap_kill_bypasses(self, kernel):
        attacker = spawn(kernel, "CapKill")
        victim = spawn(kernel, uid=UID_OTHER, gid=UID_OTHER)
        kernel.sys_priv_raise(attacker.pid, CapabilitySet.of("CapKill"))
        kernel.sys_kill(attacker.pid, victim.pid, signals.SIGKILL)
        assert victim.state == ZOMBIE

    def test_handler_queues_instead_of_killing(self, kernel):
        sender = spawn(kernel)
        victim = spawn(kernel)
        kernel.sys_signal(victim.pid, signals.SIGTERM, "my_handler")
        kernel.sys_kill(sender.pid, victim.pid, signals.SIGTERM)
        assert victim.alive
        assert victim.pending_signals == [(signals.SIGTERM, "my_handler")]

    def test_sig_ign_discards(self, kernel):
        sender = spawn(kernel)
        victim = spawn(kernel)
        kernel.sys_signal(victim.pid, signals.SIGTERM, signals.SIG_IGN)
        kernel.sys_kill(sender.pid, victim.pid, signals.SIGTERM)
        assert victim.alive
        assert victim.pending_signals == []

    def test_sigkill_uncatchable(self, kernel):
        victim = spawn(kernel)
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_signal(victim.pid, signals.SIGKILL, "handler")
        assert excinfo.value.errno_value == EINVAL

    def test_kill_dead_process(self, kernel):
        sender = spawn(kernel)
        victim = spawn(kernel)
        kernel.sys_kill(sender.pid, victim.pid, signals.SIGKILL)
        with pytest.raises(SyscallError):
            kernel.sys_kill(sender.pid, victim.pid, signals.SIGKILL)


class TestMachineImages:
    def test_default_image_root_owns_shadow(self):
        kernel = build_kernel()
        assert kernel.fs.resolve("/etc/shadow").owner == 0
        assert kernel.fs.resolve("/etc").owner == 0

    def test_refactored_image_etc_owns_shadow(self):
        kernel = build_kernel(refactored_ownership=True)
        assert kernel.fs.resolve("/etc/shadow").owner == 998
        assert kernel.fs.resolve("/etc").owner == 998
        assert kernel.fs.resolve("/var/log/sulog").owner == 998

    def test_devmem_is_root_kmem_640(self):
        kernel = build_kernel()
        inode = kernel.fs.resolve("/dev/mem")
        assert (inode.owner, inode.group, inode.mode) == (0, 15, 0o640)

    def test_shadow_database_contents(self):
        kernel = build_kernel()
        content = kernel.fs.resolve("/etc/shadow").content
        assert "user:$6$userpw:" in content
        assert "other:$6$otherpw:" in content

    def test_spawn_duplicate_pid_rejected(self):
        kernel = build_kernel()
        kernel.spawn(0, 0, pid=7)
        with pytest.raises(ValueError):
            kernel.spawn(0, 0, pid=7)


class TestMoreEdges:
    def test_rename_requires_both_parents_writable(self, kernel):
        process = spawn(kernel)
        kernel.sys_open(process.pid, "/home/user/file", "wc")
        with pytest.raises(SyscallError):
            kernel.sys_rename(process.pid, "/home/user/file", "/etc/file")

    def test_open_invalid_flags(self, kernel):
        process = spawn(kernel)
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_open(process.pid, "/etc/passwd", "c")
        assert excinfo.value.errno_value == EINVAL

    def test_connect_unowned_socket(self, kernel):
        a = spawn(kernel)
        b = spawn(kernel)
        fd = kernel.sys_socket(a.pid)
        with pytest.raises(SyscallError):
            kernel.sys_connect(b.pid, fd, 80)

    def test_write_through_readonly_fd(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_open(process.pid, "/etc/passwd", "r")
        with pytest.raises(SyscallError) as excinfo:
            kernel.sys_write(process.pid, fd, "junk")
        assert excinfo.value.errno_value == EBADF

    def test_double_close(self, kernel):
        process = spawn(kernel)
        fd = kernel.sys_open(process.pid, "/etc/passwd", "r")
        kernel.sys_close(process.pid, fd)
        with pytest.raises(SyscallError):
            kernel.sys_close(process.pid, fd)

    def test_fork_child_gets_fresh_fd_table(self, kernel):
        parent = spawn(kernel)
        fd = kernel.sys_open(parent.pid, "/etc/passwd", "r")
        child = kernel.sys_fork(parent.pid)
        with pytest.raises(SyscallError):
            kernel.sys_read(child.pid, fd)

    def test_fork_inherits_lockdown(self, kernel):
        parent = spawn(kernel, lockdown=True)
        child = kernel.sys_fork(parent.pid)
        assert child.no_setuid_fixup

    def test_fork_inherits_handlers(self, kernel):
        parent = spawn(kernel)
        kernel.sys_signal(parent.pid, signals.SIGTERM, "my_handler")
        child = kernel.sys_fork(parent.pid)
        assert child.handlers[signals.SIGTERM] == "my_handler"
