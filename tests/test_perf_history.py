"""The perf-history tracker and the perf-check baseline delta table."""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

import perf_check  # noqa: E402
import perf_history  # noqa: E402
from perf_snapshot import snapshot_meta  # noqa: E402

pytestmark = pytest.mark.telemetry


def snapshot(sha="abc123def456", wall=0.1, timestamp=100.0):
    return {
        "schema": 1,
        "repeats": 3,
        "meta": {"git_sha": sha, "timestamp_unix": timestamp},
        "entries": {"passwd_pipeline_cold": {"wall_seconds": wall}},
        "speedups": {"warm_vs_cold": 2.0},
    }


class TestSnapshotMeta:
    def test_injected_timestamp_and_provenance_fields(self):
        meta = snapshot_meta(1234.5)
        assert meta["timestamp_unix"] == 1234.5
        assert meta["git_sha"]  # a sha in a repo, "unknown" outside one
        assert set(meta["host"]) == {"platform", "machine", "python", "cpu_count"}


class TestHistory:
    def test_append_then_load_round_trips(self, tmp_path):
        snap = tmp_path / "BENCH_rosa.json"
        history = tmp_path / "BENCH_history.jsonl"
        snap.write_text(json.dumps(snapshot()))
        record = perf_history.append_snapshot(
            snapshot_path=str(snap), history_path=str(history), timestamp=999.0
        )
        assert record["git_sha"] == "abc123def456"
        assert record["timestamp_unix"] == 100.0  # snapshot meta wins
        assert record["entries"] == {"passwd_pipeline_cold": 0.1}
        loaded = perf_history.load_history(str(history))
        assert loaded == [record]

    def test_missing_snapshot_fails_with_guidance(self, tmp_path):
        with pytest.raises(SystemExit, match="run `make bench-json` first"):
            perf_history.append_snapshot(
                snapshot_path=str(tmp_path / "nope.json"),
                history_path=str(tmp_path / "h.jsonl"),
                timestamp=0.0,
            )

    def test_corrupt_history_names_the_line(self, tmp_path):
        history = tmp_path / "h.jsonl"
        history.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(ValueError, match=r"h\.jsonl:2"):
            perf_history.load_history(str(history))

    def test_missing_history_is_empty(self, tmp_path):
        assert perf_history.load_history(str(tmp_path / "absent.jsonl")) == []


class TestTrajectory:
    def records(self, *walls):
        return [
            perf_history.record_from_snapshot(
                snapshot(sha=f"sha{i}", wall=wall), timestamp=float(i)
            )
            for i, wall in enumerate(walls)
        ]

    def test_regression_flagged_beyond_ratio_and_floor(self):
        table = perf_history.render_trajectory(self.records(0.1, 0.3))
        assert "REGRESSED 3.0x" in table

    def test_subfloor_noise_never_flagged(self):
        table = perf_history.render_trajectory(self.records(0.010, 0.030))
        assert "REGRESSED" not in table  # 20 ms delta is under the floor

    def test_improvement_noted(self):
        table = perf_history.render_trajectory(self.records(0.3, 0.1))
        assert "improved 3.0x" in table

    def test_empty_history_renders_guidance(self):
        assert "no history" in perf_history.render_trajectory([])


class TestBaselineDeltas:
    def test_missing_baseline_fails_with_guidance(self, tmp_path, capsys):
        rc = perf_check.baseline_deltas(
            {"passwd_pipeline_cold": 0.1},
            baseline_path=str(tmp_path / "absent.json"),
        )
        assert rc == 1
        assert "run `make bench-json`" in capsys.readouterr().err

    def test_missing_entry_fails_and_names_it(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_rosa.json"
        baseline.write_text(json.dumps(snapshot()))
        rc = perf_check.baseline_deltas(
            {"passwd_pipeline_cold": 0.1, "passwd_pipeline_warm": 0.1},
            baseline_path=str(baseline),
        )
        assert rc == 1
        assert "passwd_pipeline_warm" in capsys.readouterr().err

    def test_present_entries_print_ratios_and_pass(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_rosa.json"
        baseline.write_text(json.dumps(snapshot(wall=0.1)))
        rc = perf_check.baseline_deltas(
            {"passwd_pipeline_cold": 0.2}, baseline_path=str(baseline)
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2.00x" in out
        assert "abc123def456" in out

    def test_corrupt_baseline_fails_readably(self, tmp_path, capsys):
        baseline = tmp_path / "bad.json"
        baseline.write_text("{nope")
        rc = perf_check.baseline_deltas({"x": 0.1}, baseline_path=str(baseline))
        assert rc == 1
        assert "unreadable baseline" in capsys.readouterr().err
