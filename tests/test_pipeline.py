"""The PrivAnalyzer pipeline end-to-end on small synthetic programs."""

import pytest

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.programs.common import ProgramSpec, source_sloc
from repro.rosa.query import Verdict

GOOD_CITIZEN = """
// Uses one privilege briefly, then runs unprivileged.
void main() {
    priv_raise(CAP_DAC_READ_SEARCH);
    str h = getspnam("user");
    priv_lower(CAP_DAC_READ_SEARCH);
    if (strlen(h) == 0) { exit(1); }
    int i;
    int x = 0;
    for (i = 0; i < 100; i = i + 1) { x = x + i; }
    print_int(x);
    exit(0);
}
"""

# Note the attack model: attackers may only use syscalls the program
# itself uses (§III), so the hoarder must expose open (via getspnam) and
# kill for attacks 1/2/4 to be mountable at all.
HOARDER = """
// Keeps CAP_SETUID permitted until the very end.
void main() {
    int probe = kill(getpid(), 0);
    int i;
    int x = 0;
    for (i = 0; i < 100; i = i + 1) { x = x + i; }
    priv_raise(CAP_SETUID);
    setuid(0);
    priv_lower(CAP_SETUID);
    priv_raise(CAP_DAC_READ_SEARCH);
    str h = getspnam("user");
    priv_lower(CAP_DAC_READ_SEARCH);
    print_int(x);
    exit(0);
}
"""


def spec_for(source, name, *caps):
    return ProgramSpec(
        name=name,
        description="test program",
        source=source,
        permitted=CapabilitySet.of(*caps),
    )


class TestPipeline:
    def test_good_citizen_mostly_invulnerable(self):
        analysis = PrivAnalyzer().analyze(
            spec_for(GOOD_CITIZEN, "good", "CapDacReadSearch")
        )
        assert analysis.invulnerable_window() > 0.9
        assert analysis.vulnerability_window(1) < 0.1
        # The one privileged phase is vulnerable to the read attack only.
        first = analysis.phases[0]
        assert first.vulnerable_to(1)
        assert not first.vulnerable_to(2)
        assert not first.vulnerable_to(3)

    def test_hoarder_vulnerable_almost_always(self):
        analysis = PrivAnalyzer().analyze(spec_for(HOARDER, "bad", "CapSetuid"))
        assert analysis.vulnerability_window(1) > 0.9
        assert analysis.vulnerability_window(2) > 0.9
        assert analysis.vulnerability_window(4) > 0.9
        assert analysis.vulnerability_window(3) == 0.0

    def test_same_code_different_discipline_ranks_correctly(self):
        """The paper's core claim in miniature: privilege retention time,
        not privilege possession, decides the risk metric."""
        good = PrivAnalyzer().analyze(spec_for(GOOD_CITIZEN, "good", "CapDacReadSearch"))
        bad = PrivAnalyzer().analyze(spec_for(HOARDER, "bad", "CapSetuid"))
        assert good.vulnerability_window(1) < bad.vulnerability_window(1)

    def test_unexpected_exit_code_raises(self):
        failing = ProgramSpec(
            name="boom",
            description="exits nonzero",
            source="void main() { exit(3); }",
            permitted=CapabilitySet.empty(),
        )
        with pytest.raises(RuntimeError, match="exited with 3"):
            PrivAnalyzer().analyze(failing)

    def test_expected_exit_honoured(self):
        failing = ProgramSpec(
            name="boom",
            description="exits nonzero on purpose",
            source="void main() { exit(3); }",
            permitted=CapabilitySet.empty(),
            expected_exit=3,
        )
        analysis = PrivAnalyzer().analyze(failing)
        assert analysis.exit_code == 3

    def test_syscall_surface_extracted(self):
        analysis = PrivAnalyzer().analyze(
            spec_for(GOOD_CITIZEN, "good", "CapDacReadSearch")
        )
        assert "open_read" in analysis.syscalls  # via getspnam
        assert "kill" not in analysis.syscalls

    def test_render_table_contains_verdict_glyphs(self):
        analysis = PrivAnalyzer().analyze(spec_for(HOARDER, "bad", "CapSetuid"))
        table = analysis.render_table()
        assert "✓" in table and "✗" in table
        assert "bad_priv1" in table

    def test_timeout_counted_as_invulnerable_by_default(self):
        from repro.rewriting import SearchBudget

        analyzer = PrivAnalyzer(budget=SearchBudget(max_states=1))
        analysis = analyzer.analyze(spec_for(GOOD_CITIZEN, "good", "CapDacReadSearch"))
        # With a 1-state budget everything times out (no verdicts possible
        # beyond the initial state)...
        has_timeout = any(
            report.verdict is Verdict.TIMEOUT
            for phase in analysis.phases
            for report in phase.verdicts.values()
        )
        assert has_timeout
        window_default = analysis.vulnerability_window(1)
        window_pessimistic = analysis.vulnerability_window(1, timeout_vulnerable=True)
        assert window_pessimistic >= window_default

    def test_chrono_and_static_instrumentation_consistent(self):
        analysis = PrivAnalyzer().analyze(
            spec_for(GOOD_CITIZEN, "good", "CapDacReadSearch")
        )
        assert analysis.chrono.total > 0
        assert analysis.instrumentation.blocks_instrumented > 0


class TestSloc:
    def test_counts_exclude_comments_and_blanks(self):
        source = """
        // a comment

        int x;  /* trailing */
        /* block
           comment */
        void main() { }
        """
        assert source_sloc(source) == 2

    def test_program_specs_report_sloc(self):
        spec = spec_for(GOOD_CITIZEN, "good", "CapDacReadSearch")
        assert spec.sloc > 5
