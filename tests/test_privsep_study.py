"""The privilege-separation study: sshd monitor/child split.

Compares the monolithic sshd (paper Table III: every capability
permitted ≈100 % of execution) with the privilege-separated variant.
The combined exposure metric weights each process's vulnerable
instructions over the total instructions of both.
"""

import pytest

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.core.attacks import ALL_ATTACKS
from repro.core.multiprocess import MultiProcessAnalysis, analyze_multiprocess
from repro.frontend import compile_source
from repro.oskernel.setup import build_kernel
from repro.programs import spec_by_name
from repro.rosa import check
from repro.core.extract import syscalls_used


def run_privsep():
    """The privsep pipeline through the multi-process library API."""
    analysis = analyze_multiprocess(spec_by_name("sshdPrivsep"))
    return analysis


@pytest.fixture(scope="module")
def privsep():
    return run_privsep()


@pytest.fixture(scope="module")
def monolithic():
    return PrivAnalyzer().analyze(spec_by_name("sshd"))


class TestPrivsepStructure:
    def test_spawns_one_session_child(self, privsep):
        assert len(privsep.reports) == 2  # monitor + one session child

    def test_payload_still_served(self, privsep):
        assert any("scp chunks" in line for line in privsep.stdout)

    def test_child_runs_as_client_user(self, privsep):
        final = privsep.reports[1].phases[-1]
        assert final.uids == (1001, 1001, 1001)

    def test_child_drops_every_capability(self, privsep):
        final = privsep.reports[1].phases[-1]
        assert final.privileges == CapabilitySet.empty()
        # ...and that empty phase holds the crypto + transfer bulk.
        assert final.percent > 95

    def test_monitor_keeps_its_capabilities(self, privsep):
        """The monitor's copy is untouched by the child's priv_remove."""
        parent_report = privsep.reports[0]
        assert any(
            "CapSetuid" in phase.privileges for phase in parent_report.phases
        )

    def test_child_dwarfs_the_monitor(self, privsep):
        parent, child = privsep.reports
        assert child.total > 10 * parent.total

    def test_render_contains_both_processes(self, privsep):
        text = privsep.render()
        assert "sshdPrivsep_priv1" in text
        assert "sshdPrivsep-child1_priv1" in text


class TestPrivsepExposure:
    def test_combined_exposure_collapses(self, privsep, monolithic):
        """The study's headline: the monolithic sshd is vulnerable to
        /dev/mem reads for ~100 % of executed instructions; with the
        privsep split, only the monitor's small share remains exposed."""
        split = privsep.combined_exposure(ALL_ATTACKS[0])
        mono = monolithic.vulnerability_window(1)
        assert mono > 0.99
        assert split < 0.10
        assert split < mono / 5

    def test_kill_exposure_also_collapses(self, privsep, monolithic):
        split = privsep.combined_exposure(ALL_ATTACKS[3])
        assert monolithic.vulnerability_window(4) > 0.99
        assert split < 0.10

    def test_exposure_table_covers_all_attacks(self, privsep):
        table = privsep.exposure_table()
        assert set(table) == {attack.name for attack in ALL_ATTACKS}
        assert all(0.0 <= value <= 1.0 for value in table.values())

    def test_monitor_remains_exposed_while_running(self, privsep):
        """Privsep shrinks the exposed *instruction share*, not the
        monitor's own capabilities — its phases stay vulnerable."""
        parent_report = privsep.reports[0]
        attack = ALL_ATTACKS[0]
        surface = privsep.syscall_surface()
        exposed_phases = 0
        for phase in parent_report.phases:
            query = attack.build_query(
                phase.privileges, phase.uids, phase.gids, surface
            )
            if check(query).vulnerable:
                exposed_phases += 1
        assert exposed_phases >= 1


class TestForkSemantics:
    def test_fork_copies_globals_then_diverges(self):
        source = """
        int shared;
        int child(int x) {
            print_int(shared);
            shared = 99;
            return 0;
        }
        void main() {
            shared = 41;
            spawn_wait(&child, 0);
            print_int(shared);
            exit(0);
        }
        """
        module = compile_source(source)
        kernel = build_kernel()
        process = kernel.spawn(1000, 1000)
        from repro.vm import Interpreter

        vm = Interpreter(module, kernel, process)
        assert vm.run() == 0
        # Child saw the parent's 41; parent never saw the child's 99.
        assert vm.stdout == ["41", "41"]

    def test_child_exit_code_propagates(self):
        source = """
        int child(int x) { return x + 5; }
        void main() { print_int(spawn_wait(&child, 2)); exit(0); }
        """
        module = compile_source(source)
        kernel = build_kernel()
        process = kernel.spawn(1000, 1000)
        from repro.vm import Interpreter

        vm = Interpreter(module, kernel, process)
        vm.run()
        assert vm.stdout == ["7"]

    def test_child_capability_changes_do_not_leak_to_parent(self):
        source = """
        int child(int x) {
            priv_remove(CAP_SETUID);
            return 0;
        }
        void main() {
            spawn_wait(&child, 0);
            print_int(priv_raise(CAP_SETUID));
            exit(0);
        }
        """
        module = compile_source(source)
        kernel = build_kernel()
        process = kernel.spawn(1000, 1000, permitted=CapabilitySet.of("CapSetuid"))
        kernel.sys_prctl_lockdown(process.pid)
        from repro.vm import Interpreter

        vm = Interpreter(module, kernel, process)
        vm.run()
        assert vm.stdout == ["0"]  # the parent's raise still succeeds

    def test_fork_inherits_credentials_and_caps(self):
        kernel = build_kernel()
        parent = kernel.spawn(1000, 1000, permitted=CapabilitySet.of("CapKill"))
        child = kernel.sys_fork(parent.pid)
        assert child.creds == parent.creds
        assert child.caps.permitted == parent.caps.permitted
        assert child.pid != parent.pid
