"""Profile sections in the run ledger: round-trip, diff, the CLI gate."""

import json

import pytest

from repro.core import PrivAnalyzer
from repro.core.ledger import (
    PROFILE_FILE,
    RunLedger,
    capture_analysis,
    diff_ledgers,
)
from repro.programs import spec_by_name
from repro.telemetry import ManualClock, Profiler, Telemetry

pytestmark = pytest.mark.telemetry


@pytest.fixture(scope="module")
def profiled(tmp_path_factory):
    """One profiled su analysis captured twice, plus the profiler itself."""
    telemetry = Telemetry.enabled(clock=ManualClock(tick=0.001))
    profiler = Profiler()
    analyzer = PrivAnalyzer(telemetry=telemetry, profiler=profiler)
    analysis = analyzer.analyze(spec_by_name("su"))
    root = tmp_path_factory.mktemp("profiled-ledgers")
    kwargs = dict(cli_args={"program": "su"}, timestamp=1234.5, profiler=profiler)
    old = capture_analysis(root / "run1", analysis, telemetry, **kwargs)
    new = capture_analysis(root / "run2", analysis, telemetry, **kwargs)
    return old, new, profiler


class TestRoundTrip:
    def test_profile_artifact_written_and_listed(self, profiled):
        old, _, _ = profiled
        assert (old.root / PROFILE_FILE).exists()
        assert PROFILE_FILE in old.manifest["files"]

    def test_loaded_profile_matches_the_live_report(self, profiled):
        old, _, profiler = profiled
        assert old.profile == profiler.to_report()

    def test_capture_without_profiler_omits_the_artifact(self, tmp_path):
        telemetry = Telemetry.enabled(clock=ManualClock(tick=0.001))
        analysis = PrivAnalyzer(telemetry=telemetry).analyze(spec_by_name("su"))
        ledger = capture_analysis(tmp_path / "bare", analysis, telemetry)
        assert not (ledger.root / PROFILE_FILE).exists()
        assert PROFILE_FILE not in ledger.manifest["files"]
        assert ledger.profile is None

    def test_disabled_profiler_omits_the_artifact(self, tmp_path):
        telemetry = Telemetry.enabled(clock=ManualClock(tick=0.001))
        analysis = PrivAnalyzer(telemetry=telemetry).analyze(spec_by_name("su"))
        ledger = capture_analysis(
            tmp_path / "off", analysis, telemetry, profiler=Profiler(enabled=False)
        )
        assert ledger.profile is None


def reload_with_profile(ledger, mutate):
    """Reload the ledger with the profile artifact rewritten via ``mutate``."""
    path = ledger.root / PROFILE_FILE
    original = path.read_text()
    data = json.loads(original)
    mutate(data)
    path.write_text(json.dumps(data))
    try:
        return RunLedger.load(ledger.root)
    finally:
        path.write_text(original)


class TestDiff:
    def test_identical_profiles_diff_clean(self, profiled):
        old, new, _ = profiled
        diff = diff_ledgers(old, new, perf_tolerance=3.0)
        assert diff.clean
        assert not [f for f in diff.findings if f.kind == "profile"]

    def test_profile_in_only_one_ledger_is_informational(self, profiled, tmp_path):
        old, _, _ = profiled
        telemetry = Telemetry.enabled(clock=ManualClock(tick=0.001))
        analysis = PrivAnalyzer(telemetry=telemetry).analyze(spec_by_name("su"))
        bare = capture_analysis(tmp_path / "bare", analysis, telemetry)
        diff = diff_ledgers(old, bare, perf_tolerance=3.0)
        profile_findings = [f for f in diff.findings if f.kind == "profile"]
        assert len(profile_findings) == 1
        assert profile_findings[0].severity == "info"
        assert "only one ledger" in profile_findings[0].message

    def test_inflated_hot_path_is_a_regression(self, profiled):
        old, new, _ = profiled

        def inflate(data):
            for record in data["records"]:
                record["seconds"] = record["seconds"] * 100.0 + 1.0

        slower = reload_with_profile(new, inflate)
        diff = diff_ledgers(old, slower, perf_tolerance=1.0)
        regressions = [
            f for f in diff.findings
            if f.kind == "profile" and f.severity == "regression"
        ]
        assert regressions
        assert not diff.clean

    def test_schema_mismatch_is_informational_not_a_gate(self, profiled):
        old, new, _ = profiled
        future = reload_with_profile(new, lambda data: data.update(schema=999))
        diff = diff_ledgers(old, future, perf_tolerance=3.0)
        profile_findings = [f for f in diff.findings if f.kind == "profile"]
        assert len(profile_findings) == 1
        assert profile_findings[0].severity == "info"
        assert "not comparable" in profile_findings[0].message

    def test_new_hot_path_is_informational(self, profiled):
        old, new, _ = profiled

        def add_stack(data):
            data["records"].append(
                {"stack": ["vm", "op:imaginary"], "calls": 1,
                 "seconds": 0.001, "self_seconds": 0.001, "counters": {}}
            )

        grown = reload_with_profile(new, add_stack)
        diff = diff_ledgers(old, grown, perf_tolerance=3.0)
        appeared = [
            f for f in diff.findings
            if f.kind == "profile" and "appeared in" in f.message
        ]
        assert len(appeared) == 1
        assert appeared[0].severity == "info"
        assert diff.clean  # info findings never gate
