"""The hot-path profiler core: records, exporters, the disabled path."""

import json

import pytest

from repro.telemetry import (
    ManualClock,
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    Profiler,
)
from repro.telemetry.profiler import _NULL_SECTION

pytestmark = pytest.mark.telemetry


class TestRecording:
    def test_account_accumulates_calls_and_seconds(self):
        profiler = Profiler()
        profiler.account(("root", "child"), 0.5)
        profiler.account(("root", "child"), 0.25, calls=3)
        record = profiler.records[("root", "child")]
        assert record.calls == 4
        assert record.seconds == 0.75

    def test_counters_accumulate_independently(self):
        profiler = Profiler()
        profiler.count(("root",), "hits")
        profiler.count(("root",), "hits", 2)
        profiler.count(("root",), "misses")
        assert profiler.records[("root",)].counters == {"hits": 3, "misses": 1}

    def test_section_times_with_the_injected_clock(self):
        clock = ManualClock(tick=1.0)
        profiler = Profiler(clock=clock)
        with profiler.section("stage", "inner"):
            pass
        # Enter reads the clock once, exit once: exactly one tick apart.
        assert profiler.records[("stage", "inner")].seconds == 1.0

    def test_clear(self):
        profiler = Profiler()
        profiler.account(("a",), 1.0)
        profiler.clear()
        assert profiler.records == {}


class TestDisabled:
    """Near-zero overhead off: no records, no allocations per event."""

    def test_account_and_count_allocate_nothing(self):
        profiler = Profiler(enabled=False)
        profiler.account(("hot", "path"), 1.0)
        profiler.count(("hot", "path"), "hits")
        assert profiler.records == {}

    def test_section_returns_the_shared_null_instance(self):
        profiler = Profiler(enabled=False)
        assert profiler.section("a") is _NULL_SECTION
        assert profiler.section("a", "b") is _NULL_SECTION
        with profiler.section("a"):
            pass
        assert profiler.records == {}

    def test_null_profiler_is_disabled(self):
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.account(("x",), 1.0)
        assert NULL_PROFILER.records == {}


class TestSelfTime:
    def test_parent_excludes_direct_children(self):
        profiler = Profiler()
        profiler.account(("root",), 10.0)
        profiler.account(("root", "a"), 3.0)
        profiler.account(("root", "b"), 4.0)
        profiler.account(("root", "a", "deep"), 1.0)
        selfs = profiler.self_seconds()
        assert selfs[("root",)] == pytest.approx(3.0)  # 10 - 3 - 4
        assert selfs[("root", "a")] == pytest.approx(2.0)  # 3 - 1
        assert selfs[("root", "b")] == pytest.approx(4.0)
        assert selfs[("root", "a", "deep")] == pytest.approx(1.0)

    def test_measurement_jitter_clamps_at_zero(self):
        profiler = Profiler()
        profiler.account(("root",), 1.0)
        profiler.account(("root", "child"), 1.5)  # children overshoot
        assert profiler.self_seconds()[("root",)] == 0.0


class TestExporters:
    def build(self):
        profiler = Profiler()
        profiler.account(("search",), 0.01)
        profiler.account(("search", "rule:open"), 0.004)
        profiler.account(("search", "goal"), 0.002)
        profiler.count(("search", "goal"), "hits", 2)
        return profiler

    def test_collapsed_stack_grammar_and_self_semantics(self):
        lines = self.build().to_collapsed().splitlines()
        assert "search;rule:open 4000" in lines
        assert "search;goal 2000" in lines
        # The root line carries self time only: 10ms - 4ms - 2ms.
        assert "search 4000" in lines
        assert lines == sorted(lines)

    def test_collapsed_drops_zero_weight_stacks(self):
        profiler = self.build()
        profiler.account(("search", "rule:never"), 0.0)
        assert "rule:never" not in profiler.to_collapsed()

    def test_report_schema_and_roots(self):
        report = self.build().to_report()
        assert report["schema"] == PROFILE_SCHEMA_VERSION
        assert report["unit"] == "seconds"
        root = report["roots"]["search"]
        assert root["seconds"] == pytest.approx(0.01)
        assert root["attributed_seconds"] == pytest.approx(0.006)
        assert root["attributed_fraction"] == pytest.approx(0.6)
        by_stack = {tuple(r["stack"]): r for r in report["records"]}
        assert by_stack[("search", "goal")]["counters"] == {"hits": 2}
        assert by_stack[("search", "rule:open")]["self_seconds"] == pytest.approx(
            0.004
        )

    def test_attributed_fraction_clamps_at_one(self):
        profiler = Profiler()
        profiler.account(("root",), 1.0)
        profiler.account(("root", "a"), 1.5)
        assert profiler.to_report()["roots"]["root"]["attributed_fraction"] == 1.0

    def test_render_orders_by_self_time_and_respects_limit(self):
        text = self.build().render(limit=2)
        rows = text.splitlines()[2:]
        assert len(rows) == 2
        assert rows[0].startswith("search ") or rows[0].startswith("search;rule:open")
        assert "hits=2" in self.build().render()


class TestDeterminism:
    def drive(self):
        clock = ManualClock(tick=0.001)
        profiler = Profiler(clock=clock)
        for _ in range(3):
            with profiler.section("stage"):
                with profiler.section("stage", "inner"):
                    pass
            profiler.count(("stage",), "loops")
        return profiler

    def test_manual_clock_runs_are_bit_identical(self):
        first, second = self.drive().to_json(), self.drive().to_json()
        assert first == second
        json.loads(first)  # and it is valid JSON
