"""Kernel-visible side effects of each program workload.

The phase tables say how long privileges lived; these tests check the
programs actually *did their jobs* — passwd rewrote the shadow database,
thttpd served and logged the request, sshd delivered the payload, su ran
the command as the target user.  A model that held privileges without
performing the privileged work would reproduce the paper's tables while
measuring nothing.
"""

import pytest

from repro.autopriv import transform_module
from repro.chronopriv import instrument_module
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.oskernel.setup import build_kernel
from repro.programs import spec_by_name
from repro.vm import Interpreter


def run_spec(name):
    spec = spec_by_name(name)
    module = compile_source(spec.source, spec.name)
    transform_module(module, spec.permitted)
    instrument_module(module)
    verify_module(module)
    kernel = build_kernel(refactored_ownership=spec.refactored_fs)
    process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
    vm = Interpreter(
        module, kernel, process, argv=list(spec.argv), stdin=list(spec.stdin)
    )
    vm.env.update(
        {k: list(v) if isinstance(v, list) else v for k, v in spec.env.items()}
    )
    if spec.setup is not None:
        spec.setup(kernel, vm)
    code = vm.run()
    assert code == spec.expected_exit
    return kernel, process, vm


class TestPasswd:
    def test_shadow_hash_replaced(self):
        kernel, _, _ = run_spec("passwd")
        content = kernel.fs.resolve("/etc/shadow").content
        assert "user:$6$newsecret:" in content
        assert "user:$6$userpw:" not in content

    def test_other_entries_untouched(self):
        kernel, _, _ = run_spec("passwd")
        content = kernel.fs.resolve("/etc/shadow").content
        assert "other:$6$otherpw:" in content
        assert "root:$6$rootpw:" in content

    def test_shadow_ownership_and_mode_restored(self):
        kernel, _, _ = run_spec("passwd")
        inode = kernel.fs.resolve("/etc/shadow")
        assert (inode.owner, inode.group, inode.mode) == (0, 42, 0o640)

    def test_lock_file_cleaned_up(self):
        kernel, _, _ = run_spec("passwd")
        assert not kernel.fs.exists("/etc/.pwd.lock")
        assert not kernel.fs.exists("/etc/nshadow")

    def test_never_touched_devmem(self):
        kernel, _, _ = run_spec("passwd")
        assert kernel.devmem_reads == []
        assert kernel.devmem_writes == []


class TestRefactoredPasswd:
    def test_same_functional_result(self):
        kernel, _, _ = run_spec("passwdRef")
        content = kernel.fs.resolve("/etc/shadow").content
        assert "user:$6$newsecret:" in content

    def test_shadow_stays_etc_owned(self):
        kernel, _, _ = run_spec("passwdRef")
        assert kernel.fs.resolve("/etc/shadow").owner == 998

    def test_process_never_became_root(self):
        kernel, process, _ = run_spec("passwdRef")
        assert process.creds.euid != 0
        assert process.creds.uid_triple == (998, 998, 1000)


class TestSu:
    def test_process_ends_as_target_user(self):
        _, process, _ = run_spec("su")
        assert process.creds.uid_triple == (1001, 1001, 1001)
        assert process.creds.gid_triple == (1001, 1001, 1001)

    def test_supplementary_groups_switched(self):
        _, process, _ = run_spec("su")
        assert process.creds.supplementary == frozenset({1001})

    def test_wrong_password_rejected(self):
        spec = spec_by_name("su")
        module = compile_source(spec.source, spec.name)
        transform_module(module, spec.permitted)
        kernel = build_kernel()
        process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
        vm = Interpreter(
            module, kernel, process, argv=list(spec.argv),
            stdin=["wrong", "alsowrong", "nope"],
        )
        assert vm.run() == 1
        assert "su: Sorry." in vm.stdout
        # Identity never switched.
        assert process.creds.uid_triple == (1000, 1000, 1000)


class TestRefactoredSu:
    def test_ends_as_target_without_privileged_switch(self):
        _, process, _ = run_spec("suRef")
        assert process.creds.uid_triple == (1001, 1001, 1001)

    def test_sulog_written_unprivileged(self):
        kernel, _, _ = run_spec("suRef")
        assert "SU other" in kernel.fs.resolve("/var/log/sulog").content


class TestThttpd:
    def test_response_sent(self):
        _, _, vm = run_spec("thttpd")
        sent = vm.env.get("sent", [])
        assert "HTTP/1.0 200 OK" in sent
        assert sum(1 for line in sent if line.startswith("chunk:")) > 10

    def test_request_logged(self):
        kernel, _, _ = run_spec("thttpd")
        assert "GET /index.html" in kernel.fs.resolve("/var/log/thttpd.log").content

    def test_log_reowned_to_server_user(self):
        kernel, _, _ = run_spec("thttpd")
        assert kernel.fs.resolve("/var/log/thttpd.log").owner == 1000

    def test_port_bound(self):
        kernel, process, _ = run_spec("thttpd")
        assert kernel.bound_ports.get(80) == process.pid

    def test_chrooted(self):
        _, process, _ = run_spec("thttpd")
        assert process.chroot_path == "/srv/www"

    def test_missing_file_gets_404(self):
        spec = spec_by_name("thttpd")
        module = compile_source(spec.source, spec.name)
        transform_module(module, spec.permitted)
        kernel = build_kernel()
        process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
        vm = Interpreter(module, kernel, process)
        vm.env.update({"connections": [1], "incoming": ["GET /missing HTTP/1.0"]})
        spec.setup(kernel, vm)
        assert vm.run() == 0
        assert "HTTP/1.0 404 Not Found" in vm.env["sent"]


class TestSshd:
    def test_payload_delivered_in_chunks(self):
        _, _, vm = run_spec("sshd")
        data = [line for line in vm.env.get("sent", []) if line.startswith("data:")]
        assert len(data) >= 8  # the 1 KB payload in 128-byte chunks

    def test_port_22_bound(self):
        kernel, process, _ = run_spec("sshd")
        assert kernel.bound_ports.get(22) == process.pid

    def test_lastlog_written(self):
        kernel, _, _ = run_spec("sshd")
        assert "login" in kernel.fs.resolve("/var/log/lastlog").content

    def test_pty_chowned_to_session_user(self):
        kernel, _, _ = run_spec("sshd")
        assert kernel.fs.resolve("/dev/pts7").owner == 1001

    def test_bad_password_rejected(self):
        spec = spec_by_name("sshd")
        module = compile_source(spec.source, spec.name)
        transform_module(module, spec.permitted)
        kernel = build_kernel()
        process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
        vm = Interpreter(module, kernel, process)
        vm.env.update(
            {"connections": [1], "incoming": ["userauth:other:wrongpw"]}
        )
        spec.setup(kernel, vm)
        assert vm.run() == 1
        assert "sshd: authentication failed" in vm.stdout


class TestPing:
    def test_replies_counted(self):
        _, _, vm = run_spec("ping")
        assert "10 received" in vm.stdout

    def test_lossy_network_reported(self):
        spec = spec_by_name("ping")
        module = compile_source(spec.source, spec.name)
        transform_module(module, spec.permitted)
        kernel = build_kernel()
        process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
        vm = Interpreter(module, kernel, process, argv=list(spec.argv))
        vm.env.update({"incoming": ["icmp-reply:0", "icmp-reply:1"]})  # 8 lost
        assert vm.run() == 0
        assert "2 received" in vm.stdout

    def test_without_netraw_fails_cleanly(self):
        from repro.caps import CapabilitySet

        spec = spec_by_name("ping")
        module = compile_source(spec.source, spec.name)
        transform_module(module, CapabilitySet.empty())
        kernel = build_kernel()
        process = kernel.spawn(spec.uid, spec.gid)
        vm = Interpreter(module, kernel, process, argv=list(spec.argv))
        assert vm.run() == 2
        assert "ping: raw socket failed" in vm.stdout
