"""State-space reduction: symmetry canonicalization, POR, hash upkeep.

Covers the three layers separately and together:

* :func:`repro.rewriting.reduction.canonical_key` on synthetic typed
  keys (pure symmetry algebra, no UNIX semantics);
* :class:`repro.rosa.independence.RosaReducer` on real configurations
  (merge counting, ample-set selection, the build gates);
* verdict/witness/exposure parity between reduced and unreduced
  searches — the soundness contract of the whole subsystem;
* the incremental multiset hash that makes raw-state dedup O(1).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rewriting import Configuration, SearchBudget, breadth_first_search
from repro.rewriting.objects import Msg, _mix
from repro.rewriting.reduction import (
    Footprint,
    canonical_key,
    footprint,
    typed_fset,
    typed_id,
)
from repro.rosa import RosaQuery, Verdict, check, goals, model, syscalls
from repro.rosa.engine import CachedOutcome, query_cache_key
from repro.rosa.independence import build_reducer
from repro.rosa.query import DEFAULT_BUDGET, unix_system
from repro.rosa.syscalls import WILDCARD

BUDGET = SearchBudget(max_states=50_000, max_seconds=30.0)


# -- canonical_key: pure symmetry algebra -------------------------------------


def uid(value):
    return typed_id("uid", value)


class TestCanonicalKey:
    def test_no_anonymous_ids_returns_none(self):
        elements = [(("obj", "User", uid(10)), 1)]
        assert canonical_key(elements, {"uid": frozenset({10})}) is None

    def test_renamed_states_share_a_key(self):
        # {euid: 10, users: {10, 20}} vs {euid: 20, users: {10, 20}} —
        # the bijection 10<->20 maps one onto the other.
        def state(euid):
            return [
                (("proc", uid(euid)), 1),
                (("user", uid(10)), 1),
                (("user", uid(20)), 1),
            ]

        key_a = canonical_key(state(10), {})
        key_b = canonical_key(state(20), {})
        assert key_a is not None
        assert key_a == key_b

    def test_pinned_ids_block_the_merge(self):
        def state(euid):
            return [
                (("proc", uid(euid)), 1),
                (("user", uid(10)), 1),
                (("user", uid(20)), 1),
            ]

        pinned = {"uid": frozenset({20})}
        key_a = canonical_key(state(10), pinned)
        key_b = canonical_key(state(20), pinned)
        assert key_a is not None and key_b is not None
        assert key_a != key_b

    def test_structurally_different_states_never_merge(self):
        one = [(("proc", uid(10)), 1), (("user", uid(10)), 1)]
        two = [(("proc", uid(10)), 2), (("user", uid(10)), 1)]
        assert canonical_key(one, {}) != canonical_key(two, {})

    def test_fset_members_are_renamed_and_reordered(self):
        # {10, 20} with 10 marked vs {10, 20} with 20 marked: isomorphic.
        def state(marked):
            other = 30 - marked
            return [
                (("grp", typed_fset([uid(marked), uid(other)])), 1),
                (("mark", uid(marked)), 1),
            ]

        assert canonical_key(state(10), {}) == canonical_key(state(20), {})

    def test_tie_break_is_exact_within_cap(self):
        # Two fully interchangeable ids occurring symmetrically: colour
        # refinement cannot split them, the permutation enumeration must
        # still map isomorphic states to one key.
        def state(first, second):
            return [
                (("pair", uid(first), uid(second)), 1),
                (("pair", uid(second), uid(first)), 1),
            ]

        assert canonical_key(state(10, 20), {}) == canonical_key(state(30, 40), {})

    def test_tie_cap_fallback_is_deterministic(self):
        elements = [(("bag", typed_fset([uid(u) for u in (1, 2, 3, 4)])), 1)]
        key_a = canonical_key(elements, {}, tie_cap=1)
        key_b = canonical_key(elements, {}, tie_cap=1)
        assert key_a == key_b

    def test_shared_memo_changes_nothing(self):
        def state(euid):
            return [
                (("proc", uid(euid)), 1),
                (("user", uid(10)), 1),
                (("user", uid(20)), 1),
            ]

        memo = {}
        fresh = [canonical_key(state(e), {}) for e in (10, 20)]
        memoed = [canonical_key(state(e), {}, memo=memo) for e in (10, 20)]
        again = [canonical_key(state(e), {}, memo=memo) for e in (10, 20)]
        assert fresh == memoed == again


class TestFootprint:
    def test_disjoint_footprints_are_independent(self):
        a = footprint(reads={"x"}, writes={"y"})
        b = footprint(reads={"z"}, writes={"w"})
        assert a.independent(b) and b.independent(a)

    @pytest.mark.parametrize(
        "a, b",
        [
            (footprint(writes={"t"}), footprint(writes={"t"})),
            (footprint(writes={"t"}), footprint(reads={"t"})),
            (footprint(reads={"t"}), footprint(writes={"t"})),
        ],
    )
    def test_any_write_overlap_is_dependent(self, a: Footprint, b: Footprint):
        assert not a.independent(b)


# -- RosaReducer: symmetry on real configurations -----------------------------


def symmetric_setuid_config(repeat=2):
    """A process that may become any of three interchangeable users."""
    elements = [
        model.process_for_user(1, 10, 10),
        model.user(4, 10),
        model.user(5, 20),
        model.user(6, 30),
    ]
    elements += [syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"])] * repeat
    return Configuration(elements)


def symmetric_query(repeat=2):
    # The goal names no uid, so all three users stay anonymous and the
    # post-setuid states (euid 10 / 20 / 30) are pairwise isomorphic.
    return RosaQuery(
        "symmetric-setuid",
        symmetric_setuid_config(repeat),
        goals.process_terminated(1),
    )


class TestRosaReducerSymmetry:
    def test_isomorphic_wildcard_branches_merge(self):
        query = symmetric_query(repeat=2)
        full = check(query, BUDGET, reduction=False)
        reduced = check(query, BUDGET, reduction=True)
        assert full.verdict is Verdict.INVULNERABLE
        assert reduced.verdict is full.verdict
        assert reduced.states_seen < full.states_seen
        assert reduced.stats.symmetry_hits > 0
        assert full.stats.symmetry_hits == 0

    def test_merge_counts_match_the_state_shrinkage(self):
        query = symmetric_query(repeat=1)
        full = check(query, BUDGET, reduction=False)
        reduced = check(query, BUDGET, reduction=True)
        # initial + {euid in 10/20/30} collapses to initial + 1 class.
        assert full.states_seen == 4
        assert reduced.states_seen == 2
        assert reduced.stats.symmetry_hits == 2

    def test_goal_pinned_uid_does_not_merge(self):
        # file_owner_is(3, 20) pins uid 20: becoming user 20 is now
        # distinguishable from becoming user 30.
        elements = [
            model.process_for_user(1, 10, 10),
            model.file_obj(3, name="/tmp/f", owner=10, group=10, perms=0o644),
            model.user(4, 10),
            model.user(5, 20),
            model.user(6, 30),
            syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"]),
        ]
        query = RosaQuery(
            "pinned-owner",
            Configuration(elements),
            goals.file_owner_is(3, 20),
        )
        full = check(query, BUDGET, reduction=False)
        reduced = check(query, BUDGET, reduction=True)
        assert reduced.verdict is full.verdict is Verdict.INVULNERABLE
        # 20 is pinned but 30 still merges with nothing (10 is the only
        # other anonymous uid and it owns the file): no state collapses.
        assert reduced.states_seen == full.states_seen

    def test_reducer_declines_without_goal_footprint(self):
        bare_goal = lambda config: False  # noqa: E731 — no .footprint
        reducer = build_reducer(
            symmetric_setuid_config(), bare_goal, unix_system(), BUDGET
        )
        assert reducer is None

    def test_depth_bound_switches_por_off(self):
        # A POR witness can be longer than the shortest one, so under a
        # depth bound only symmetry stays on.
        query = symmetric_query()
        reducer = build_reducer(
            query.initial,
            query.goal,
            unix_system(),
            SearchBudget(max_states=1000, max_depth=5),
        )
        assert reducer is not None
        assert not reducer.por

    def test_canonical_is_stable_across_repeated_calls(self):
        query = symmetric_query()
        reducer = build_reducer(query.initial, query.goal, unix_system(), BUDGET)
        assert reducer is not None
        first = reducer.canonical(query.initial)
        assert reducer.canonical(query.initial) == first


# -- RosaReducer: partial-order reduction -------------------------------------


class TestPartialOrderReduction:
    def por_config(self):
        return Configuration(
            [
                model.process_for_user(1, 10, 10),
                model.socket_obj(5, owner_pid=1, port=0),
                model.user(4, 10),
                syscalls.sys_connect(1, 5, 8080),
                syscalls.sys_setuid(1, 10),
            ]
        )

    def test_invisible_independent_message_leads_ample_set(self):
        # connect writes nothing and is independent of setuid; the goal
        # reads only socket state, which neither message can reach first.
        config = self.por_config()
        goal = goals.socket_bound_to_privileged_port()
        reducer = build_reducer(config, goal, unix_system(), BUDGET)
        assert reducer is not None and reducer.por
        ample = list(reducer.successors(config))
        full = list(unix_system().successors(config))
        labels = {label for label, _ in ample}
        assert labels == {"connect"}
        assert len(ample) < len(full)
        assert reducer.stats.por_pruned == 1
        assert reducer.stats.ample_states == 1

    def test_single_pending_message_is_never_ample(self):
        config = Configuration(
            [
                model.process_for_user(1, 10, 10),
                model.socket_obj(5, owner_pid=1, port=0),
                syscalls.sys_connect(1, 5, 8080),
            ]
        )
        goal = goals.socket_bound_to_privileged_port()
        reducer = build_reducer(config, goal, unix_system(), BUDGET)
        list(reducer.successors(config))
        assert reducer.stats.por_pruned == 0

    def test_goal_visible_message_is_not_deferred(self):
        # bind writes sock.port, which the goal reads: the ample set may
        # not defer it, and connect leading the set is still fine — but a
        # set containing only bind-deferral would be unsound.  Here both
        # messages are pending; connect is ample, bind is deferred, and
        # the verdict must still match the unreduced search.
        config = Configuration(
            [
                model.process_for_user(1, 10, 10),
                model.socket_obj(5, owner_pid=1, port=0),
                model.port_obj(7, 80),
                syscalls.sys_connect(1, 5, 8080),
                syscalls.sys_bind(1, 5, 80, ["CapNetBindService"]),
            ]
        )
        query = RosaQuery(
            "bind-visible", config, goals.socket_bound_to_privileged_port()
        )
        full = check(query, BUDGET, reduction=False)
        reduced = check(query, BUDGET, reduction=True)
        assert full.verdict is Verdict.VULNERABLE
        assert reduced.verdict is Verdict.VULNERABLE


# -- parity: the soundness contract -------------------------------------------


def figure2_query(repeat=1):
    elements = [
        model.process(1, euid=10, ruid=11, suid=12, egid=10, rgid=11, sgid=12),
        model.dir_entry(2, name="/etc", owner=40, group=41, perms=0o777, inode=3),
        model.file_obj(3, name="/etc/passwd", owner=40, group=41, perms=0o000),
        model.user(4, 10),
    ]
    messages = [
        syscalls.sys_open(1, 3, "r"),
        syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"]),
        syscalls.sys_chown(1, WILDCARD, WILDCARD, 41, ["CapChown"]),
        syscalls.sys_chmod(1, WILDCARD, 0o777),
    ]
    elements += messages * repeat
    return RosaQuery(
        "fig2", Configuration(elements), goals.file_opened_for_read(3)
    )


class TestReductionParity:
    @pytest.mark.parametrize("repeat", [1, 2])
    def test_figure2_verdict_and_witness_parity(self, repeat):
        query = figure2_query(repeat)
        full = check(query, BUDGET, reduction=False)
        reduced = check(query, BUDGET, reduction=True)
        assert reduced.verdict is full.verdict is Verdict.VULNERABLE
        assert bool(reduced.witness) == bool(full.witness)

    def test_exhaustive_reduced_never_sees_more_states(self):
        for query in (symmetric_query(1), symmetric_query(2), figure2_query()):
            full = check(query, BUDGET, reduction=False)
            reduced = check(query, BUDGET, reduction=True)
            if full.verdict is Verdict.INVULNERABLE:
                assert reduced.states_seen <= full.states_seen

    def test_pipeline_exposure_table_is_bit_identical(self):
        # The whole-tool acceptance check: reduction on vs off must
        # produce byte-equal Table III output for a real program.
        from repro.core.pipeline import PrivAnalyzer
        from repro.programs import spec_by_name

        spec = spec_by_name("passwd")
        tables = []
        for reduction in (False, True):
            analyzer = PrivAnalyzer(use_query_cache=False, reduction=reduction)
            analysis = analyzer.analyze(spec)
            tables.append(analysis.render_table())
        assert tables[0] == tables[1]


# -- engine integration: cache identity and cached stats ----------------------


class TestEngineIntegration:
    def test_cache_key_separates_reduced_and_unreduced(self):
        query = symmetric_query()
        reduced_key = query_cache_key(query, DEFAULT_BUDGET, reduction=True)
        full_key = query_cache_key(query, DEFAULT_BUDGET, reduction=False)
        assert reduced_key != full_key

    def test_cached_outcome_round_trips_reduction_stats(self):
        query = symmetric_query()
        report = check(query, BUDGET, reduction=True)
        assert report.stats.symmetry_hits > 0
        outcome = CachedOutcome.from_report(report)
        revived = CachedOutcome.from_json(outcome.to_json())
        restored = revived.to_report(query)
        assert restored.stats.symmetry_hits == report.stats.symmetry_hits
        assert restored.stats.por_pruned == report.stats.por_pruned


# -- incremental multiset hashing ---------------------------------------------


class TestIncrementalHash:
    def test_add_matches_fresh_construction(self):
        base = symmetric_setuid_config()
        extra = model.user(7, 40)
        assert hash(base.add(extra)) == hash(Configuration(list(base) + [extra]))
        assert base.add(extra) == Configuration(list(base) + [extra])

    def test_remove_matches_fresh_construction(self):
        base = symmetric_setuid_config()
        msg = next(base.messages("setuid"))
        removed = base.remove(msg)
        rebuilt_elements = list(base)
        rebuilt_elements.remove(msg)
        assert hash(removed) == hash(Configuration(rebuilt_elements))
        assert removed == Configuration(rebuilt_elements)

    def test_update_object_matches_fresh_construction(self):
        base = symmetric_setuid_config()
        proc = base.find_object(1)
        updated = base.update_object(proc.update(euid=20))
        rebuilt = [
            proc.update(euid=20) if element == proc else element
            for element in base
        ]
        assert hash(updated) == hash(Configuration(rebuilt))
        assert updated == Configuration(rebuilt)

    def test_hash_ignores_construction_order(self):
        elements = list(symmetric_setuid_config())
        assert hash(Configuration(elements)) == hash(
            Configuration(list(reversed(elements)))
        )

    def test_duplicate_counts_change_the_hash(self):
        msg = Msg("socket", 1, frozenset())
        once = Configuration([msg])
        twice = Configuration([msg, msg])
        assert hash(once) != hash(twice)
        assert once != twice

    def test_mixer_is_spread_not_identity(self):
        # Plain summation of small-int hashes would collide multisets
        # like {1, 3} and {2, 2}; the mixer must keep them apart.
        assert _mix(1) + _mix(3) != _mix(2) + _mix(2)


# -- lazy vs eager canonicalization: partition equivalence --------------------


class TestLazyEagerEquivalence:
    """The lazy visited-set keys must induce exactly the eager partition.

    :meth:`RosaReducer.canonical` returns lazily-resolving keys (hash by
    blinded signature, colour refinement only on collision); soundness
    says two states merge under them iff their eager
    :func:`canonical_key` bodies are equal.  The property is checked on
    whole reachable spaces: group every state by each key kind and
    compare the partitions.
    """

    @staticmethod
    def _reachable(config, limit=200):
        system = unix_system()
        seen = {config.key: config}
        frontier = [config]
        while frontier and len(seen) < limit:
            state = frontier.pop()
            for _label, successor in system.successors(state):
                if successor.key not in seen:
                    seen[successor.key] = successor
                    frontier.append(successor)
        return list(seen.values())

    @staticmethod
    def _partition(keys):
        groups = {}
        for index, key in enumerate(keys):
            groups.setdefault(key, []).append(index)
        return sorted(tuple(indices) for indices in groups.values())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 2), st.permutations([10, 20, 30]))
    def test_lazy_partition_matches_eager(self, repeat, uids):
        elements = [
            model.process_for_user(1, uids[0], uids[0]),
            model.file_obj(3, name="/tmp/f", owner=uids[0], group=10, perms=0o644),
            model.user(4, uids[0]),
            model.user(5, uids[1]),
            model.user(6, uids[2]),
        ]
        elements += [syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"])] * repeat
        config = Configuration(elements)
        reducer = build_reducer(
            config, goals.process_terminated(1), unix_system(), BUDGET
        )
        assert reducer is not None
        states = self._reachable(config)
        lazy = [reducer.canonical(state) for state in states]
        eager = []
        for state in states:
            typed = [
                (reducer._typed_key(element), count)
                for element, count in state._counts.items()
            ]
            body = canonical_key(typed, reducer.pinned)
            # canonical_key returns None on the no-anonymous-ids fast
            # path, where the state is its own representative.
            eager.append(("raw", state.key) if body is None else ("canon", body))
        assert self._partition(lazy) == self._partition(eager)

    def test_lazy_keys_of_renamed_states_compare_equal(self):
        reducer = build_reducer(
            symmetric_setuid_config(),
            goals.process_terminated(1),
            unix_system(),
            BUDGET,
        )
        assert reducer is not None

        def after_setuid(euid):
            base = symmetric_setuid_config()
            proc = base.find_object(1)
            msg = next(base.messages("setuid"))
            return base.remove(msg).update_object(
                proc.update(euid=euid, ruid=euid, suid=euid)
            )

        keys = [reducer.canonical(after_setuid(euid)) for euid in (20, 30)]
        assert hash(keys[0]) == hash(keys[1])
        assert keys[0] == keys[1]
