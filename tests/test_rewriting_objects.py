"""Object/message configurations: multiset semantics and canonical keys."""

import pytest
from hypothesis import given, strategies as st

from repro.rewriting import Configuration, Msg, Obj


def sample_objects():
    return [
        Obj(1, "Process", euid=10, rdfset=frozenset()),
        Obj(2, "File", name="/etc/passwd", owner=40),
        Obj(3, "User", uid=10),
    ]


class TestObj:
    def test_attribute_access(self):
        obj = Obj(1, "Process", euid=10)
        assert obj["euid"] == 10
        assert obj.get("missing") is None
        assert obj.get("missing", 5) == 5

    def test_update_is_pure(self):
        obj = Obj(1, "Process", euid=10)
        changed = obj.update(euid=0)
        assert obj["euid"] == 10
        assert changed["euid"] == 0
        assert changed.oid == 1

    def test_equality_by_content(self):
        assert Obj(1, "P", x=1) == Obj(1, "P", x=1)
        assert Obj(1, "P", x=1) != Obj(1, "P", x=2)
        assert Obj(1, "P", x=1) != Obj(2, "P", x=1)

    def test_frozenset_attrs_hash_deterministically(self):
        a = Obj(1, "P", members=frozenset({3, 1, 2}))
        b = Obj(1, "P", members=frozenset({2, 3, 1}))
        assert a.key == b.key

    def test_repr_is_maude_style(self):
        assert repr(Obj(1, "Process", euid=10)).startswith("< 1 : Process |")


class TestMsg:
    def test_equality(self):
        assert Msg("open", 1, 3, "r") == Msg("open", 1, 3, "r")
        assert Msg("open", 1, 3, "r") != Msg("open", 1, 4, "r")

    def test_frozenset_args_canonical(self):
        assert Msg("m", frozenset({1, 2})).key == Msg("m", frozenset({2, 1})).key


class TestConfiguration:
    def test_rejects_non_elements(self):
        with pytest.raises(TypeError):
            Configuration([42])

    def test_multiset_preserves_duplicates(self):
        msg = Msg("open", 1)
        config = Configuration([msg, msg])
        assert config.count(msg) == 2
        assert len(config) == 2

    def test_ac_equality(self):
        objs = sample_objects()
        a = Configuration(objs)
        b = Configuration(list(reversed(objs)))
        assert a == b
        assert a.key == b.key
        assert hash(a) == hash(b)

    def test_find_object(self):
        config = Configuration(sample_objects())
        assert config.find_object(2)["name"] == "/etc/passwd"
        assert config.find_object(99) is None

    def test_objects_filter_by_class(self):
        config = Configuration(sample_objects())
        assert [obj.oid for obj in config.objects("User")] == [3]
        assert len(list(config.objects())) == 3

    def test_messages_filter_by_name(self):
        config = Configuration([Msg("open", 1), Msg("kill", 1)])
        assert [msg.name for msg in config.messages("kill")] == ["kill"]

    def test_add_remove(self):
        msg = Msg("open", 1)
        config = Configuration(sample_objects())
        bigger = config.add(msg)
        assert bigger.count(msg) == 1
        smaller = bigger.remove(msg)
        assert smaller == config

    def test_remove_one_of_duplicates(self):
        msg = Msg("open", 1)
        config = Configuration([msg, msg]).remove(msg)
        assert config.count(msg) == 1

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Configuration([]).remove(Msg("open", 1))

    def test_update_object(self):
        config = Configuration(sample_objects())
        updated = config.update_object(Obj(3, "User", uid=99))
        assert updated.find_object(3)["uid"] == 99
        assert config.find_object(3)["uid"] == 10  # original untouched

    def test_update_object_missing_raises(self):
        with pytest.raises(KeyError):
            Configuration([]).update_object(Obj(9, "User", uid=0))

    def test_update_object_noop_returns_self(self):
        config = Configuration(sample_objects())
        assert config.update_object(config.find_object(3)) is config

    def test_consume(self):
        msg = Msg("setuid", 1, 0)
        proc = Obj(1, "Process", euid=10)
        config = Configuration([proc, msg])
        after = config.consume(msg, proc.update(euid=0))
        assert after.count(msg) == 0
        assert after.find_object(1)["euid"] == 0

    @given(st.permutations(sample_objects() + [Msg("open", 1), Msg("open", 1)]))
    def test_key_invariant_under_permutation(self, elements):
        reference = Configuration(sample_objects() + [Msg("open", 1), Msg("open", 1)])
        assert Configuration(elements).key == reference.key
