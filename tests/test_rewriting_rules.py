"""Equations, rules, normalization and one-step rewriting.

The worked example throughout is Peano arithmetic — the classic Maude
tutorial module — which exercises the same machinery ROSA relies on.
"""

import pytest

from repro.rewriting import (
    Equation,
    NormalizationError,
    RewriteSystem,
    TermRule,
    Var,
    normalize,
    op,
    rewrite_once,
)


def peano(n: int):
    result = op("zero")
    for _ in range(n):
        result = op("s", result)
    return result


@pytest.fixture
def peano_equations():
    # plus(zero, N) = N ; plus(s(M), N) = s(plus(M, N))
    return [
        Equation("plus-zero", op("plus", op("zero"), Var("N")), Var("N")),
        Equation(
            "plus-s",
            op("plus", op("s", Var("M")), Var("N")),
            op("s", op("plus", Var("M"), Var("N"))),
        ),
    ]


class TestEquations:
    def test_normalize_addition(self, peano_equations):
        subject = op("plus", peano(2), peano(3))
        assert normalize(subject, peano_equations) == peano(5)

    def test_normalize_zero_plus_zero(self, peano_equations):
        assert normalize(op("plus", peano(0), peano(0)), peano_equations) == peano(0)

    def test_normalize_nested(self, peano_equations):
        subject = op("plus", op("plus", peano(1), peano(1)), peano(1))
        assert normalize(subject, peano_equations) == peano(3)

    def test_normal_form_is_fixpoint(self, peano_equations):
        result = normalize(op("plus", peano(2), peano(2)), peano_equations)
        assert normalize(result, peano_equations) == result

    def test_nonterminating_equations_detected(self):
        looping = [Equation("swap", op("f", Var("X")), op("f", Var("X")))]
        # f(X) -> f(X) never terminates; rather than hang, we must raise.
        with pytest.raises(NormalizationError):
            normalize(op("f", 1), looping, max_steps=50)

    def test_condition_gates_application(self):
        guarded = Equation(
            "only-small",
            op("box", Var("X")),
            Var("X"),
            condition=lambda subst: subst["X"].value < 10,
        )
        assert normalize(op("box", 5), [guarded]).value == 5
        assert normalize(op("box", 50), [guarded]) == op("box", 50)

    def test_unbound_rhs_variable_rejected(self):
        with pytest.raises(ValueError):
            Equation("bad", op("f", Var("X")), Var("Y"))


class TestRules:
    def test_rewrite_once_enumerates_positions(self):
        flip = TermRule("flip", op("a"), op("b"))
        subject = op("pair", op("a"), op("a"))
        results = {str(result) for _, result in rewrite_once(subject, [flip])}
        assert results == {"pair(b, a)", "pair(a, b)"}

    def test_rewrite_once_labels(self):
        flip = TermRule("flip", op("a"), op("b"))
        labels = [label for label, _ in rewrite_once(op("a"), [flip])]
        assert labels == ["flip"]

    def test_no_match_yields_nothing(self):
        flip = TermRule("flip", op("a"), op("b"))
        assert list(rewrite_once(op("c"), [flip])) == []

    def test_conditional_rule(self):
        grow = TermRule(
            "grow",
            op("n", Var("X")),
            op("n", Var("X")),
            condition=lambda subst: False,
        )
        assert list(rewrite_once(op("n", 1), [grow])) == []


class TestRewriteSystem:
    def test_successors_are_normalized(self, peano_equations):
        # Rule: eat(N) => done(plus(N, s(zero))) — successor should arrive
        # already simplified by the equations.
        rule = TermRule(
            "eat",
            op("eat", Var("N")),
            op("done", op("plus", Var("N"), peano(1))),
        )
        system = RewriteSystem("peano", peano_equations, [rule])
        successors = list(system.successors(op("eat", peano(2))))
        assert successors == [("eat", op("done", peano(3)))]

    def test_repr_counts(self, peano_equations):
        system = RewriteSystem("peano", peano_equations, [])
        assert "2 equations" in repr(system)
