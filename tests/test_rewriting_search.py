"""Bounded breadth-first search: outcomes, witnesses, budgets.

Uses two toy state spaces: an integer line (successor/predecessor) and
the Maude-tutorial vending machine.
"""

import pytest

from repro.rewriting import (
    MAX_RETAINED_SAMPLES,
    SearchBudget,
    SearchOutcome,
    breadth_first_search,
)


def line_successors(bound):
    """States 0..bound with +1/-1 moves."""

    def successors(state):
        if state + 1 <= bound:
            yield "inc", state + 1
        if state - 1 >= 0:
            yield "dec", state - 1

    return successors


class TestOutcomes:
    def test_initial_state_can_be_goal(self):
        result = breadth_first_search(5, line_successors(10), lambda s: s == 5)
        assert result.outcome is SearchOutcome.FOUND
        assert result.path == []
        assert result.state == 5

    def test_found_with_shortest_witness(self):
        result = breadth_first_search(0, line_successors(10), lambda s: s == 3)
        assert result.found
        assert result.path == ["inc", "inc", "inc"]

    def test_exhausted_proves_unreachable(self):
        result = breadth_first_search(0, line_successors(5), lambda s: s == 99)
        assert result.outcome is SearchOutcome.EXHAUSTED
        assert result.proved_unreachable
        assert result.states_seen == 6  # 0..5

    def test_state_budget_exceeded(self):
        result = breadth_first_search(
            0,
            line_successors(10_000),
            lambda s: s == 9_999,
            budget=SearchBudget(max_states=10),
        )
        assert result.outcome is SearchOutcome.BUDGET_EXCEEDED
        assert not result.proved_unreachable

    def test_depth_budget_blocks_deep_goal(self):
        result = breadth_first_search(
            0,
            line_successors(10),
            lambda s: s == 9,
            budget=SearchBudget(max_depth=3),
        )
        assert result.outcome is SearchOutcome.BUDGET_EXCEEDED

    def test_depth_budget_still_finds_shallow_goal(self):
        result = breadth_first_search(
            0,
            line_successors(10),
            lambda s: s == 2,
            budget=SearchBudget(max_depth=3),
        )
        assert result.found

    def test_time_budget(self):
        def slow_successors(state):
            yield "step", state + 1

        result = breadth_first_search(
            0,
            slow_successors,
            lambda s: False,
            budget=SearchBudget(max_states=None, max_seconds=0.05),
        )
        assert result.outcome is SearchOutcome.BUDGET_EXCEEDED

    def test_visited_set_prevents_reexploration(self):
        result = breadth_first_search(0, line_successors(3), lambda s: False)
        # 4 states total; without deduplication this search never ends.
        assert result.proved_unreachable
        assert result.states_seen == 4


class TestCanonicalisation:
    def test_canonical_merges_equivalent_states(self):
        # States are (value, junk); canonical key ignores junk.
        def successors(state):
            value, junk = state
            yield "step", (value + 1, junk + 1)
            yield "loop", (value, junk + 1)

        result = breadth_first_search(
            (0, 0),
            successors,
            lambda s: s[0] == 3,
            canonical=lambda s: s[0],
        )
        assert result.found
        assert result.states_seen <= 5


class TestVendingMachine:
    """The Maude tutorial: $ buys a cake, 3 quarters buy an apple...

    State: (dollars, quarters, cakes, apples).
    """

    @staticmethod
    def successors(state):
        dollars, quarters, cakes, apples = state
        if dollars >= 1:
            yield "buy-cake", (dollars - 1, quarters, cakes + 1, apples)
        if quarters >= 3:
            yield "buy-apple", (dollars, quarters - 3, cakes, apples + 1)
        if quarters >= 4:
            yield "change", (dollars + 1, quarters - 4, cakes, apples)

    def test_can_buy_cake_with_quarters(self):
        result = breadth_first_search(
            (0, 4, 0, 0), self.successors, lambda s: s[2] >= 1
        )
        assert result.found
        assert result.path == ["change", "buy-cake"]

    def test_cannot_overspend(self):
        result = breadth_first_search(
            (0, 2, 0, 0), self.successors, lambda s: s[3] >= 1
        )
        assert result.proved_unreachable

    def test_two_purchases(self):
        result = breadth_first_search(
            (1, 3, 0, 0), self.successors, lambda s: s[2] >= 1 and s[3] >= 1
        )
        assert result.found
        assert sorted(result.path) == ["buy-apple", "buy-cake"]


class TestResultMetadata:
    def test_elapsed_nonnegative(self):
        result = breadth_first_search(0, line_successors(2), lambda s: s == 2)
        assert result.elapsed >= 0

    def test_states_explored_counts_expansions(self):
        result = breadth_first_search(0, line_successors(3), lambda s: False)
        assert result.states_explored == 4


class TestWitnessMinimality:
    """BFS guarantees shortest witnesses — the property that makes ROSA's
    attack recipes canonical (the paper's 3-step Figure 2 solution)."""

    def test_shortest_path_on_line(self):
        result = breadth_first_search(0, line_successors(100), lambda s: s == 7)
        assert len(result.path) == 7

    def test_prefers_direct_route(self):
        # Two routes to the goal: a 1-step jump and a 3-step walk.
        def successors(state):
            if state == 0:
                yield "walk", 1
                yield "jump", 9
            elif state < 9:
                yield "walk", state + 1

        result = breadth_first_search(0, successors, lambda s: s == 9)
        assert result.path == ["jump"]

    def test_figure2_witness_is_minimal(self):
        """No 2-step recipe opens the mode-000 file: chown alone leaves
        the mode, chmod alone leaves the owner."""
        from repro.rosa import Configuration, RosaQuery, check, goals, model, syscalls

        config = Configuration(
            [
                model.process(1, euid=10, ruid=11, suid=12,
                              egid=10, rgid=11, sgid=12),
                model.file_obj(3, name="/etc/passwd", owner=40, group=41,
                               perms=0o000),
                model.user(4, 10),
                syscalls.sys_open(1, 3, "r"),
                syscalls.sys_chown(1, -1, -1, 41, ["CapChown"]),
                syscalls.sys_chmod(1, -1, 0o777, ["CapFowner"]),
            ]
        )
        report = check(RosaQuery("min", config, goals.file_opened_for_read(3)))
        assert report.vulnerable
        assert len(report.witness) == 2  # chmod (CapFowner) + open suffices


class TestSampleRetention:
    """The live callback sees every sample; the result keeps a bounded,
    decimated series (endpoints always survive)."""

    def search_with_samples(self, states, **kwargs):
        live = []
        result = breadth_first_search(
            0,
            line_successors(states),
            lambda s: False,
            progress=live.append,
            progress_interval=1,
            **kwargs,
        )
        return live, result.stats.samples

    def test_retained_samples_stay_under_the_default_cap(self):
        live, retained = self.search_with_samples(2 * MAX_RETAINED_SAMPLES)
        assert len(live) == 2 * MAX_RETAINED_SAMPLES + 1
        assert len(retained) <= MAX_RETAINED_SAMPLES
        # Endpoints survive decimation: the very first reading and the
        # very last one the callback saw.
        assert retained[0] == live[0]
        assert retained[-1] == live[-1]
        # The series stays in emission order.
        explored = [s.states_explored for s in retained]
        assert explored == sorted(explored)

    def test_custom_cap(self):
        live, retained = self.search_with_samples(200, max_samples=16)
        assert len(live) == 201
        assert len(retained) <= 16
        assert retained[-1] == live[-1]

    def test_no_callback_retains_nothing(self):
        result = breadth_first_search(0, line_successors(50), lambda s: False)
        assert result.stats.samples == []


class TestDeepStateSpaceStats:
    """SearchStats accounting on a deep (depth >= 50) synthetic space."""

    def test_line_walk_depth_and_dedup(self):
        # 0..60 with +1/-1 moves: every expansion past state 0 re-offers
        # its predecessor, so dedup fires once per non-initial state.
        result = breadth_first_search(0, line_successors(60), lambda s: False)
        assert result.outcome is SearchOutcome.EXHAUSTED
        assert result.states_seen == 61
        assert result.stats.max_depth == 60
        assert result.stats.dedup_hits == 60
        assert result.stats.peak_frontier == 1

    def test_branching_walk_peak_frontier(self):
        # +1/+2 moves over 0..80: the frontier holds two depths at once
        # and the +2 shortcut halves the BFS depth of the far end.
        def successors(state):
            for step in (1, 2):
                if state + step <= 80:
                    yield f"+{step}", state + step

        result = breadth_first_search(0, successors, lambda s: False)
        assert result.outcome is SearchOutcome.EXHAUSTED
        assert result.states_seen == 81
        assert result.stats.max_depth == 40
        assert result.stats.peak_frontier >= 2
        # Every state except 1 and 80's unreachable +2 twin is offered
        # twice (via +1 and via +2): once enqueued, once deduped.
        assert result.stats.dedup_hits == 79


class TestProgressSampleDivisionSafety:
    """budget_used / states_per_second must survive degenerate budgets
    and coarse clocks without dividing by zero."""

    def frozen_clock(self):
        return lambda: 0.0

    def test_zero_elapsed_reports_zero_rate(self):
        samples = []
        breadth_first_search(
            0,
            line_successors(20),
            lambda s: False,
            progress=samples.append,
            progress_interval=1,
            clock=self.frozen_clock(),
        )
        assert samples
        assert all(s.states_per_second == 0.0 for s in samples)
        assert all(s.elapsed == 0.0 for s in samples)

    def test_zero_state_limit_reads_as_fully_consumed(self):
        samples = []
        result = breadth_first_search(
            0,
            line_successors(20),
            lambda s: False,
            budget=SearchBudget(max_states=0),
            progress=samples.append,
            progress_interval=1,
            clock=self.frozen_clock(),
        )
        assert result.outcome is SearchOutcome.BUDGET_EXCEEDED
        assert samples
        assert all(s.budget_used == 1.0 for s in samples)

    def test_zero_time_limit_reads_as_fully_consumed(self):
        samples = []
        breadth_first_search(
            0,
            line_successors(5),
            lambda s: False,
            budget=SearchBudget(max_seconds=0.0),
            progress=samples.append,
            progress_interval=1,
            clock=self.frozen_clock(),
        )
        assert samples
        assert all(s.budget_used == 1.0 for s in samples)

    def test_unlimited_budget_reads_as_zero(self):
        samples = []
        breadth_first_search(
            0,
            line_successors(5),
            lambda s: False,
            budget=SearchBudget(max_states=None),
            progress=samples.append,
            progress_interval=1,
            clock=self.frozen_clock(),
        )
        assert samples
        assert all(s.budget_used == 0.0 for s in samples)

    def test_budget_used_is_capped_at_one(self):
        samples = []
        breadth_first_search(
            0,
            line_successors(50),
            lambda s: False,
            budget=SearchBudget(max_states=3),
            progress=samples.append,
            progress_interval=1,
        )
        assert samples
        assert all(0.0 <= s.budget_used <= 1.0 for s in samples)
