"""Unit and property tests for the term algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.rewriting import (
    Atom,
    Compound,
    Substitution,
    Var,
    match,
    op,
    replace_at,
    subterms,
    term,
)

# A strategy for small ground terms.
ground_terms = st.recursive(
    st.one_of(
        st.integers(-100, 100).map(Atom),
        st.text("abc", min_size=1, max_size=3).map(Atom),
    ),
    lambda children: st.builds(
        lambda functor, args: Compound(functor, tuple(args)),
        st.sampled_from(["f", "g", "h"]),
        st.lists(children, max_size=3),
    ),
    max_leaves=12,
)


class TestAtoms:
    def test_equality_respects_type(self):
        # bool is not int here: True and 1 must be distinct atoms.
        assert Atom(1) != Atom(True)
        assert Atom(1) == Atom(1)

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            Atom([1])

    def test_ground_and_no_variables(self):
        assert Atom(3).is_ground()
        assert list(Atom(3).variables()) == []


class TestCompound:
    def test_str_rendering(self):
        assert str(op("s", op("zero"))) == "s(zero)"

    def test_nullary_renders_bare(self):
        assert str(op("zero")) == "zero"

    def test_args_must_be_terms(self):
        with pytest.raises(TypeError):
            Compound("f", (1,))

    def test_groundness_recursive(self):
        assert op("f", 1, op("g", 2)).is_ground()
        assert not Compound("f", (Var("X"),)).is_ground()

    def test_op_coerces_python_values(self):
        built = op("f", 1, "x")
        assert built.args == (Atom(1), Atom("x"))


class TestSubstitution:
    def test_bind_and_get(self):
        subst = Substitution().bind("X", Atom(1))
        assert subst.get("X") == Atom(1)
        assert subst["X"] == Atom(1)

    def test_rebind_same_value_ok(self):
        subst = Substitution().bind("X", Atom(1)).bind("X", Atom(1))
        assert len(subst) == 1

    def test_rebind_conflict_raises(self):
        subst = Substitution().bind("X", Atom(1))
        with pytest.raises(KeyError):
            subst.bind("X", Atom(2))

    def test_substitute_into_compound(self):
        pattern = Compound("f", (Var("X"), Atom(2)))
        result = pattern.substitute(Substitution({"X": Atom(9)}))
        assert result == op("f", 9, 2)

    def test_unbound_variable_survives(self):
        result = Var("Y").substitute(Substitution({"X": Atom(1)}))
        assert result == Var("Y")


class TestMatch:
    def test_atom_matches_itself(self):
        assert match(Atom(3), Atom(3)) is not None
        assert match(Atom(3), Atom(4)) is None

    def test_variable_binds(self):
        subst = match(Var("X"), op("f", 1))
        assert subst["X"] == op("f", 1)

    def test_repeated_variable_must_agree(self):
        pattern = Compound("f", (Var("X"), Var("X")))
        assert match(pattern, op("f", 1, 1)) is not None
        assert match(pattern, op("f", 1, 2)) is None

    def test_functor_mismatch(self):
        assert match(op("f", 1), op("g", 1)) is None

    def test_arity_mismatch(self):
        assert match(op("f", 1), op("f", 1, 2)) is None

    def test_nested(self):
        pattern = Compound("s", (Compound("s", (Var("N"),)),))
        subst = match(pattern, op("s", op("s", op("zero"))))
        assert subst["N"] == op("zero")

    @given(ground_terms)
    def test_everything_matches_itself(self, subject):
        assert match(subject, subject) is not None

    @given(ground_terms)
    def test_variable_matches_anything(self, subject):
        subst = match(Var("X"), subject)
        assert subst is not None
        assert Var("X").substitute(subst) == subject


class TestSubtermsAndReplace:
    def test_subterms_preorder(self):
        subject = op("f", op("g", 1), 2)
        paths = [path for path, _ in subterms(subject)]
        assert paths == [(), (0,), (0, 0), (1,)]

    def test_replace_at_root(self):
        assert replace_at(op("f", 1), (), Atom(9)) == Atom(9)

    def test_replace_nested(self):
        subject = op("f", op("g", 1), 2)
        replaced = replace_at(subject, (0, 0), Atom(7))
        assert replaced == op("f", op("g", 7), 2)

    def test_replace_bad_path(self):
        with pytest.raises(IndexError):
            replace_at(op("f", 1), (3,), Atom(0))

    @given(ground_terms)
    def test_replace_identity(self, subject):
        for path, sub in subterms(subject):
            assert replace_at(subject, path, sub) == subject

    @given(ground_terms)
    def test_subterm_count_at_least_one(self, subject):
        assert len(list(subterms(subject))) >= 1


class TestCoercion:
    def test_term_passthrough(self):
        atom = Atom(1)
        assert term(atom) is atom

    def test_term_wraps_scalars(self):
        assert term(5) == Atom(5)
        assert term("x") == Atom("x")
