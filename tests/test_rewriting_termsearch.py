"""Maude-style term search: the vending machine as a term module."""

import pytest

from repro.rewriting import (
    Equation,
    RewriteSystem,
    SearchBudget,
    TermRule,
    Var,
    matched_substitution,
    op,
    search_terms,
)
from repro.rewriting.terms import Atom, Compound


def money(dollars, quarters, cakes, apples):
    return op("state", dollars, quarters, cakes, apples)


class _FoldArithmetic(Equation):
    """Evaluate ``add``/``sub`` over integer atoms.

    Maude would import the built-in INT module for this; we provide the
    same normalisation by overriding the application hook (the lhs/rhs
    passed to the base class are only placeholders).
    """

    def __init__(self) -> None:
        super().__init__("fold-int", op("add", Var("X"), Var("Y")), Var("X"))

    def try_apply_at_root(self, subject):
        if isinstance(subject, Compound) and subject.functor in ("add", "sub"):
            lhs, rhs = subject.args
            if isinstance(lhs, Atom) and isinstance(rhs, Atom):
                if subject.functor == "add":
                    return Atom(lhs.value + rhs.value)
                return Atom(lhs.value - rhs.value)
        return None


def _atleast(name, amount):
    def condition(subst):
        return subst[name].value >= amount

    return condition


@pytest.fixture
def machine():
    """Maude's vending machine: $ buys a cake, 3 quarters an apple,
    4 quarters change into a dollar."""
    D, Q, C, A = Var("D"), Var("Q"), Var("C"), Var("A")
    rules = [
        TermRule(
            "buy-cake",
            op("state", D, Q, C, A),
            op("state", op("sub", D, 1), Q, op("add", C, 1), A),
            condition=_atleast("D", 1),
        ),
        TermRule(
            "buy-apple",
            op("state", D, Q, C, A),
            op("state", D, op("sub", Q, 3), C, op("add", A, 1)),
            condition=_atleast("Q", 3),
        ),
        TermRule(
            "change",
            op("state", D, Q, C, A),
            op("state", op("add", D, 1), op("sub", Q, 4), C, A),
            condition=_atleast("Q", 4),
        ),
    ]
    return RewriteSystem("VENDING", [_FoldArithmetic()], rules)


STATE_PATTERN = op("state", Var("D"), Var("Q"), Var("C"), Var("A"))


class TestTermSearch:
    def test_buy_cake_with_four_quarters(self, machine):
        result = search_terms(
            machine,
            money(0, 4, 0, 0),
            STATE_PATTERN,
            condition=lambda subst: subst["C"].value >= 1,
        )
        assert result.found
        assert result.path == ["change", "buy-cake"]

    def test_pattern_bindings_recoverable(self, machine):
        result = search_terms(
            machine,
            money(1, 3, 0, 0),
            STATE_PATTERN,
            condition=lambda subst: subst["C"].value >= 1 and subst["A"].value >= 1,
        )
        assert result.found
        bindings = matched_substitution(STATE_PATTERN, result)
        assert bindings["C"].value == 1
        assert bindings["A"].value == 1
        assert bindings["D"].value == 0

    def test_unreachable_goal_exhausts(self, machine):
        result = search_terms(
            machine,
            money(0, 2, 0, 0),
            STATE_PATTERN,
            condition=lambda subst: subst["A"].value >= 1,
        )
        assert result.proved_unreachable

    def test_budget_respected(self, machine):
        result = search_terms(
            machine,
            money(100, 400, 0, 0),
            STATE_PATTERN,
            condition=lambda subst: False,
            budget=SearchBudget(max_states=20),
        )
        assert not result.found
        assert not result.proved_unreachable

    def test_initial_term_is_normalised_first(self, machine):
        result = search_terms(
            machine,
            op("state", op("add", 0, 1), 0, 0, 0),
            op("state", 1, 0, 0, 0),
        )
        assert result.found
        assert result.path == []

    def test_ground_pattern_matches_exact_state(self, machine):
        result = search_terms(
            machine,
            money(0, 7, 0, 0),
            op("state", 0, 1, 0, 2),  # spend 6 quarters on 2 apples
        )
        assert result.found
        assert result.path == ["buy-apple", "buy-apple"]

    def test_nonmatching_pattern_never_found(self, machine):
        result = search_terms(
            machine,
            money(0, 3, 0, 0),
            op("wrong-functor", Var("X")),
        )
        assert result.proved_unreachable
