"""Defense-weakened attackers (§X future work)."""

import pytest

from repro.rewriting import Configuration
from repro.rosa import RosaQuery, check, goals, model, syscalls
from repro.rosa.defenses import (
    SequencedObjectSystem,
    apply_cfi,
    apply_data_integrity,
    apply_seccomp,
    compare_defenses,
)
from repro.rosa.query import unix_system
from repro.rosa.syscalls import WILDCARD


def devmem_query(caps=("CapSetuid",)):
    """The canonical attack-1 query: setuid(0) then open /dev/mem."""
    capset = frozenset(syscalls.caps(caps))
    config = Configuration(
        [
            model.process_for_user(1, uid=1000, gid=1000),
            model.file_obj(10, name="/dev/mem", owner=0, group=15, perms=0o640),
            model.user(20, 0),
            model.user(21, 1000),
            syscalls.sys_setuid(1, WILDCARD, capset),
            syscalls.sys_open(1, WILDCARD, "r", capset),
        ]
    )
    return RosaQuery("devmem", config, goals.file_opened_for_read(10))


class TestSeccomp:
    def test_filtering_the_pivotal_call_blocks_attack(self):
        undefended = check(devmem_query())
        assert undefended.vulnerable
        filtered = apply_seccomp(devmem_query(), ["open"])
        assert not check(filtered).vulnerable

    def test_allowing_everything_changes_nothing(self):
        filtered = apply_seccomp(devmem_query(), ["open", "setuid"])
        assert check(filtered).vulnerable

    def test_objects_untouched(self):
        filtered = apply_seccomp(devmem_query(), [])
        assert len(list(filtered.initial.objects())) == len(
            list(devmem_query().initial.objects())
        )
        assert list(filtered.initial.messages()) == []

    def test_name_annotated(self):
        assert apply_seccomp(devmem_query(), []).name.endswith("+seccomp")


class TestCfi:
    def test_program_order_allows_attack_in_that_order(self):
        query = devmem_query()
        order = [
            syscalls.sys_setuid(1, WILDCARD, frozenset(syscalls.caps(["CapSetuid"]))),
            syscalls.sys_open(1, WILDCARD, "r", frozenset(syscalls.caps(["CapSetuid"]))),
        ]
        constrained = apply_cfi(query, order)
        report = check(constrained)
        assert report.vulnerable
        assert report.witness == ["setuid", "open"]

    def test_reversed_order_blocks_attack(self):
        """If the program opens before it setuids, a CFI-constrained
        attacker cannot reorder them — and the open fails unprivileged."""
        query = devmem_query()
        order = [
            syscalls.sys_open(1, WILDCARD, "r", frozenset(syscalls.caps(["CapSetuid"]))),
            syscalls.sys_setuid(1, WILDCARD, frozenset(syscalls.caps(["CapSetuid"]))),
        ]
        constrained = apply_cfi(query, order)
        assert not check(constrained).vulnerable

    def test_message_not_in_order_never_fires(self):
        query = devmem_query()
        order = [
            syscalls.sys_setuid(1, WILDCARD, frozenset(syscalls.caps(["CapSetuid"]))),
        ]
        constrained = apply_cfi(query, order)
        # setuid may fire but open never does.
        assert not check(constrained).vulnerable

    def test_sequenced_system_respects_duplicates(self):
        message = syscalls.sys_open(1, WILDCARD, "r")
        target_a = model.file_obj(5, name="a", owner=1000, group=1000, perms=0o600)
        target_b = model.file_obj(6, name="b", owner=1000, group=1000, perms=0o600)
        config = Configuration(
            [model.process_for_user(1, uid=1000, gid=1000), target_a, target_b,
             message, message]
        )
        system = SequencedObjectSystem(unix_system(), [message, message])
        both = goals.all_of(
            goals.file_opened_for_read(5), goals.file_opened_for_read(6)
        )
        query = RosaQuery("two-opens", config, both, system=system)
        assert check(query).vulnerable


class TestDataIntegrity:
    def test_wildcard_messages_dropped(self):
        weakened = apply_data_integrity(devmem_query())
        assert list(weakened.initial.messages()) == []
        assert not check(weakened).vulnerable

    def test_concrete_substitution(self):
        # The program's actual calls: setuid(0) then open(/dev/mem).
        capset = frozenset(syscalls.caps(["CapSetuid"]))
        concrete = [
            syscalls.sys_setuid(1, 0, capset),
            syscalls.sys_open(1, 10, "r", capset),
        ]
        weakened = apply_data_integrity(devmem_query(), concrete)
        assert check(weakened).vulnerable

    def test_concrete_but_harmless_calls_stay_safe(self):
        capset = frozenset(syscalls.caps(["CapSetuid"]))
        concrete = [
            syscalls.sys_setuid(1, 1000, capset),  # program only setuids to itself
            syscalls.sys_open(1, 10, "r", capset),
        ]
        weakened = apply_data_integrity(devmem_query(), concrete)
        assert not check(weakened).vulnerable


class TestComparison:
    def test_compare_defenses_matrix(self):
        capset = frozenset(syscalls.caps(["CapSetuid"]))
        order = [
            syscalls.sys_setuid(1, WILDCARD, capset),
            syscalls.sys_open(1, WILDCARD, "r", capset),
        ]
        comparison = compare_defenses(
            devmem_query(),
            program_order=order,
            seccomp_allowlist=["open"],
        )
        assert comparison.verdicts["undefended"] == "vulnerable"
        assert comparison.verdicts["seccomp"] == "invulnerable"
        assert comparison.verdicts["cfi"] == "vulnerable"
        assert comparison.verdicts["arg-integrity"] == "invulnerable"
        assert "undefended=vulnerable" in comparison.render()

    def test_defenses_compose(self):
        capset = frozenset(syscalls.caps(["CapSetuid"]))
        order = [
            syscalls.sys_setuid(1, WILDCARD, capset),
            syscalls.sys_open(1, WILDCARD, "r", capset),
        ]
        stacked = apply_seccomp(apply_cfi(devmem_query(), order), ["setuid"])
        assert not check(stacked).vulnerable


class TestCapsicum:
    """§X: comparing Linux privileges against Capsicum capability mode."""

    def test_capability_mode_blocks_devmem_despite_capabilities(self):
        """The headline contrast: even CAP_DAC_OVERRIDE cannot reach
        /dev/mem from inside the sandbox — the path-based open is gone."""
        from repro.rosa.defenses import apply_capsicum

        query = devmem_query(caps=("CapDacOverride", "CapSetuid"))
        assert check(query).vulnerable
        sandboxed = apply_capsicum(query)
        assert not check(sandboxed).vulnerable

    def test_descriptor_operations_survive(self):
        """fchmod on an already-open descriptor still works in capability
        mode, exactly as Capsicum specifies."""
        from repro.rosa.defenses import apply_capsicum

        capset = frozenset(syscalls.caps(["CapFowner"]))
        opened = model.process_for_user(1, uid=1000, gid=1000).update(
            wrfset=frozenset({10})
        )
        config = Configuration(
            [
                opened,
                model.file_obj(10, name="held", owner=0, group=0, perms=0o600),
                syscalls.sys_fchmod(1, 10, 0o777, capset),
                syscalls.sys_open(1, WILDCARD, "r", capset),
            ]
        )

        def file_became_open(state):
            return state.find_object(10)["perms"] == 0o777

        query = RosaQuery("fchmod-held", config, file_became_open)
        sandboxed = apply_capsicum(query)
        report = check(sandboxed)
        assert report.vulnerable  # the descriptor-based route remains
        assert report.witness == ["fchmod"]
        # ...but the path-based open message is gone entirely.
        assert not list(sandboxed.initial.messages("open"))

    def test_credential_changes_survive(self):
        from repro.rosa.defenses import apply_capsicum

        query = devmem_query()
        sandboxed = apply_capsicum(query)
        assert list(sandboxed.initial.messages("setuid"))

    def test_comparison_includes_capsicum_column(self):
        comparison = compare_defenses(devmem_query())
        assert comparison.verdicts["capsicum"] == "invulnerable"
        assert comparison.verdicts["undefended"] == "vulnerable"
