"""The Maude-style textual input format (paper Figures 2 and 4)."""

import pytest

from repro.caps import Capability
from repro.rosa import check, model, syscalls
from repro.rosa.dsl import (
    DslError,
    parse_goal_condition,
    parse_perm_mask,
    parse_query,
    render_configuration,
    render_perm_mask,
)

FIGURE_2 = """
*** The paper's Figure 2/4 example, verbatim structure.
search in UNIX :
  < 1 : Process | euid : 10 , ruid : 11 , suid : 12 ,
                  egid : 10 , rgid : 11 , sgid : 12 ,
                  state : run , rdfset : empty , wrfset : empty >
  < 2 : Dir | name : "/etc" , perms : rwxrwxrwx ,
              inode : 3 , owner : 40 , group : 41 >
  < 3 : File | name : "/etc/passwd" , perms : --------- ,
               owner : 40 , group : 41 >
  < 4 : User | uid : 10 >
  open(1, 3, r, empty)
  setuid(1, -1, CapSetuid)
  chown(1, -1, -1, 41, CapChown)
  chmod(1, -1, rwxrwxrwx, empty)
=>* such that 3 in rdfset(1) .
"""


class TestPermMasks:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("rwxrwxrwx", 0o777),
            ("---------", 0o000),
            ("rw-r-----", 0o640),
            ("rwxr-x---", 0o750),
            ("0o640", 0o640),
            ("640", 0o640),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_perm_mask(text) == expected

    @pytest.mark.parametrize("mask", [0o777, 0o640, 0o000, 0o755, 0o501])
    def test_roundtrip(self, mask):
        assert parse_perm_mask(render_perm_mask(mask)) == mask

    def test_bad_mask(self):
        with pytest.raises(DslError):
            parse_perm_mask("rwz------")


class TestFigure2:
    def test_parses_and_reproduces_witness(self):
        query = parse_query(FIGURE_2, "fig2")
        report = check(query)
        assert report.vulnerable
        assert report.witness == ["chown", "chmod", "open"]

    def test_objects_reconstructed(self):
        query = parse_query(FIGURE_2)
        process = query.initial.find_object(1)
        assert process["euid"] == 10 and process["suid"] == 12
        passwd = query.initial.find_object(3)
        assert passwd["name"] == "/etc/passwd"
        assert passwd["perms"] == 0o000
        etc = query.initial.find_object(2)
        assert etc["inode"] == 3

    def test_messages_reconstructed(self):
        query = parse_query(FIGURE_2)
        by_name = {msg.name: msg for msg in query.initial.messages()}
        assert by_name["open"].args[2] == syscalls.O_RDONLY
        assert by_name["setuid"].args[1] == syscalls.WILDCARD
        assert by_name["setuid"].args[2] == frozenset({Capability.CAP_SETUID})
        assert by_name["chmod"].args[2] == 0o777
        assert by_name["chmod"].args[3] == frozenset()

    def test_comments_ignored(self):
        query = parse_query("*** nothing\n" + FIGURE_2)
        assert query.initial.find_object(1) is not None


class TestMoreSyntax:
    def test_socket_and_ports(self):
        text = """
        < 1 : Process | euid : 1000 , ruid : 1000 , suid : 1000 ,
                        egid : 1000 , rgid : 1000 , sgid : 1000 >
        < 9 : Port | port : 22 >
        socket(1, CapNetBindService)
        bind(1, -1, -1, CapNetBindService)
        =>* such that bound(1) < 1024 .
        """
        report = check(parse_query(text, "bind"))
        assert report.vulnerable

    def test_kill_goal(self):
        text = """
        < 1 : Process | euid : 1000 , ruid : 1000 , suid : 1000 ,
                        egid : 1000 , rgid : 1000 , sgid : 1000 >
        < 2 : Process | euid : 0 , ruid : 0 , suid : 0 ,
                        egid : 0 , rgid : 0 , sgid : 0 >
        kill(1, 2, 9, CapKill)
        =>* such that state(2) == dead .
        """
        report = check(parse_query(text, "kill"))
        assert report.vulnerable
        assert report.witness == ["kill"]

    def test_setresuid_keep_keyword(self):
        text = """
        < 1 : Process | euid : 1000 , ruid : 1000 , suid : 1000 ,
                        egid : 1000 , rgid : 1000 , sgid : 1000 >
        < 4 : User | uid : 0 >
        < 3 : File | name : "f" , perms : rw------- , owner : 0 , group : 0 >
        setresuid(1, keep, -1, keep, CapSetuid)
        open(1, 3, r, empty)
        =>* such that 3 in rdfset(1) .
        """
        report = check(parse_query(text))
        assert report.vulnerable
        assert report.witness == ["setresuid", "open"]

    def test_owner_goal(self):
        condition = parse_goal_condition("owner(3) == 40")
        from repro.rewriting import Configuration

        config = Configuration(
            [model.file_obj(3, name="f", owner=40, group=0, perms=0o644)]
        )
        assert condition(config)

    def test_multiple_capabilities_in_message(self):
        text = """
        < 1 : Process | euid : 1000 , ruid : 1000 , suid : 1000 ,
                        egid : 1000 , rgid : 1000 , sgid : 1000 >
        < 3 : File | name : "f" , perms : --------- , owner : 0 , group : 0 >
        chown(1, 3, 1000, 1000, CapChown CapFowner)
        =>* such that owner(3) == 1000 .
        """
        query = parse_query(text)
        message = next(query.initial.messages("chown"))
        assert message.args[4] == frozenset(
            {Capability.CAP_CHOWN, Capability.CAP_FOWNER}
        )


class TestErrors:
    def test_unknown_class(self):
        with pytest.raises(DslError, match="unknown object class"):
            parse_query("< 1 : Widget | size : 3 > =>* such that 3 in rdfset(1) .")

    def test_unknown_syscall(self):
        with pytest.raises(DslError, match="unknown system call"):
            parse_query("fork(1) =>* such that 3 in rdfset(1) .")

    def test_missing_attribute(self):
        with pytest.raises(DslError, match="missing attribute"):
            parse_query("< 1 : Process | euid : 1 > =>* such that 1 in rdfset(1) .")

    def test_unsupported_goal(self):
        with pytest.raises(DslError, match="unsupported goal"):
            parse_goal_condition("the moon is full")

    def test_missing_goal(self):
        with pytest.raises(DslError, match="such that"):
            parse_query("< 4 : User | uid : 1 > =>*")

    def test_too_few_arguments(self):
        with pytest.raises(DslError, match="at least"):
            parse_query("open(1) =>* such that 1 in rdfset(1) .")


class TestRoundtrip:
    def test_render_then_parse_preserves_configuration(self):
        query = parse_query(FIGURE_2)
        text = render_configuration(query.initial)
        reparsed = parse_query(text + "\n=>* such that 3 in rdfset(1) .")
        assert reparsed.initial == query.initial

    def test_render_preserves_message_multiplicity(self):
        from repro.rewriting import Configuration

        message = syscalls.sys_open(1, 3, "r")
        config = Configuration(
            [model.process_for_user(1, uid=10, gid=10), message, message]
        )
        text = render_configuration(config)
        reparsed = parse_query(text + "\n=>* such that 3 in rdfset(1) .")
        assert reparsed.initial.count(message) == 2


class TestRoundtripProperty:
    """Random configurations survive render -> parse unchanged."""

    from hypothesis import given, settings, strategies as st

    ids = st.sampled_from([0, 42, 998, 1000, 1001])
    modes = st.integers(min_value=0, max_value=0o777)

    @settings(max_examples=60, deadline=None)
    @given(
        euid=ids, owner=ids, group=ids, mode=modes,
        port=st.integers(min_value=1, max_value=9000),
        cap_count=st.integers(min_value=0, max_value=3),
    )
    def test_configuration_roundtrip(self, euid, owner, group, mode, port, cap_count):
        from repro.caps import Capability
        from repro.rewriting import Configuration
        from repro.rosa.dsl import parse_query, render_configuration

        caps = frozenset(list(Capability)[:cap_count])
        config = Configuration(
            [
                model.process_for_user(1, uid=euid, gid=euid),
                model.file_obj(3, name="/some/file", owner=owner, group=group, perms=mode),
                model.dir_entry(4, name="/some", owner=owner, group=group,
                                perms=0o755, inode=3),
                model.socket_obj(5, owner_pid=1, port=port),
                model.user(6, owner),
                model.group(7, group),
                model.port_obj(8, port),
                syscalls.sys_open(1, 3, "r", caps),
                syscalls.sys_chmod(1, 3, mode, caps),
                syscalls.sys_setresuid(1, syscalls.KEEP, owner, syscalls.WILDCARD, caps),
                syscalls.sys_rename(1, 4, "renamed", caps),
            ]
        )
        text = render_configuration(config)
        reparsed = parse_query(text + "\n=>* such that 3 in rdfset(1) .")
        assert reparsed.initial == config
