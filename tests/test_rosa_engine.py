"""The ROSA query engine: caching, canonical keys, batch scheduling, parity.

The engine must never change an answer: the acceptance bar is that every
verdict, witness and exposure fraction is bit-identical with the engine
on versus off, while repeated questions stop costing a search.
"""

import dataclasses
import json
import random

import pytest

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.core.attacks import ALL_ATTACKS, AttackQuerySpec
from repro.core.multiprocess import DEFAULT_MULTIPROCESS_BUDGET
from repro.programs import spec_by_name
from repro.rewriting import Configuration, ObjectSystem, SearchBudget
from repro.rosa import (
    ParallelPolicy,
    QueryCache,
    QueryEngine,
    QueryRequest,
    RosaQuery,
    check,
    goals,
    model,
    query_cache_key,
    syscalls,
    unix_rules,
)
from repro.telemetry import Telemetry

BUDGET = SearchBudget(max_states=50_000, max_seconds=30.0)


def shadow_query(name="read-shadow", perms=0o640, goal=None):
    config = Configuration(
        [
            model.process_for_user(1, uid=1000, gid=1000),
            model.file_obj(3, name="/etc/shadow", owner=0, group=42, perms=perms),
            model.user(4, 1000),
            model.user(5, 0),
            syscalls.sys_open(1, 3, "r", ["CapDacReadSearch"]),
        ]
    )
    return RosaQuery(name, config, goal or goals.file_opened_for_read(3))


def attack_requests(privs, uids, gids, surface, repeat=1):
    return [
        QueryRequest(
            attack.build_query(privs, uids, gids, surface, repeat=repeat),
            spec=attack.query_spec(privs, uids, gids, surface, repeat=repeat),
        )
        for attack in ALL_ATTACKS
    ]


class TestCanonicalKeys:
    def test_same_query_content_same_key(self):
        assert query_cache_key(shadow_query("a"), BUDGET) == query_cache_key(
            shadow_query("b"), BUDGET
        )

    def test_key_ignores_element_order(self):
        base = shadow_query()
        shuffled = RosaQuery(
            "shuffled", Configuration(reversed(list(base.initial))), base.goal
        )
        assert query_cache_key(base, BUDGET) == query_cache_key(shuffled, BUDGET)

    def test_key_differs_across_budgets(self):
        query = shadow_query()
        tighter = dataclasses.replace(BUDGET, max_states=10)
        assert query_cache_key(query, BUDGET) != query_cache_key(query, tighter)

    def test_key_differs_across_goals(self):
        read = shadow_query(goal=goals.file_opened_for_read(3))
        write = shadow_query(goal=goals.file_opened_for_write(3))
        assert query_cache_key(read, BUDGET) != query_cache_key(write, BUDGET)

    def test_key_differs_across_goal_arguments(self):
        this_file = shadow_query(goal=goals.file_opened_for_read(3))
        other_file = shadow_query(goal=goals.file_opened_for_read(4))
        assert query_cache_key(this_file, BUDGET) != query_cache_key(
            other_file, BUDGET
        )

    def test_key_differs_across_configurations(self):
        assert query_cache_key(shadow_query(perms=0o640), BUDGET) != query_cache_key(
            shadow_query(perms=0o600), BUDGET
        )

    def test_goal_key_overrides_introspection(self):
        explicit = dataclasses.replace(shadow_query(), goal_key=("attack", 1))
        other = dataclasses.replace(shadow_query(), goal_key=("attack", 2))
        assert query_cache_key(explicit, BUDGET) != query_cache_key(other, BUDGET)

    def test_attack_queries_carry_goal_keys(self):
        privs = CapabilitySet.of("CAP_DAC_READ_SEARCH")
        query = ALL_ATTACKS[0].build_query(
            privs, (1000, 1000, 1000), (1000, 1000, 1000), frozenset({"open"})
        )
        assert query.goal_key == ("attack", 1)


class TestQueryCache:
    def test_hit_returns_identical_verdict_and_witness(self):
        engine = QueryEngine(budget=BUDGET, cache=QueryCache())
        first = engine.check(shadow_query("first"))
        second = engine.check(shadow_query("second"))
        assert not first.from_cache and second.from_cache
        assert second.verdict == first.verdict
        assert second.witness == first.witness
        assert second.states_explored == first.states_explored
        assert second.stats.peak_frontier == first.stats.peak_frontier
        # The served report belongs to the asking query, not the cached one.
        assert second.query.name == "second"

    def test_in_memory_hit_keeps_compromised_state(self):
        engine = QueryEngine(budget=BUDGET, cache=QueryCache())
        first = engine.check(shadow_query())
        second = engine.check(shadow_query())
        assert second.compromised_state == first.compromised_state

    def test_no_cache_always_searches(self):
        engine = QueryEngine(budget=BUDGET, cache=None)
        assert not engine.check(shadow_query()).from_cache
        assert not engine.check(shadow_query()).from_cache

    def test_track_states_bypasses_cache(self):
        engine = QueryEngine(budget=BUDGET, cache=QueryCache())
        engine.check(shadow_query())
        report = engine.check(shadow_query(), track_states=True)
        assert not report.from_cache
        assert report.witness_states  # the whole point of bypassing

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        engine = QueryEngine(budget=BUDGET, cache=cache)
        engine.check(shadow_query(perms=0o640))
        engine.check(shadow_query(perms=0o600))
        engine.check(shadow_query(perms=0o644))
        assert len(cache) == 2
        assert not engine.check(shadow_query(perms=0o640)).from_cache

    def test_hit_rate(self):
        cache = QueryCache()
        engine = QueryEngine(budget=BUDGET, cache=cache)
        engine.check(shadow_query())
        engine.check(shadow_query())
        engine.check(shadow_query())
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_disk_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        warm = QueryEngine(budget=BUDGET, cache=QueryCache(path=path))
        original = warm.check(shadow_query())
        warm.save_cache()

        cold = QueryEngine(budget=BUDGET, cache=QueryCache(path=path))
        served = cold.check(shadow_query())
        assert served.from_cache
        assert served.verdict == original.verdict
        assert served.witness == original.witness
        # Disk entries are slim: no live configuration graph.
        assert served.compromised_state is None

    def test_version_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": {"x": {}}}))
        assert len(QueryCache(path=str(path))) == 0

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("not json{")
        assert len(QueryCache(path=str(path))) == 0


class TestRunQueries:
    PRIVS = CapabilitySet.of("CAP_DAC_READ_SEARCH", "CAP_SETUID", "CAP_KILL")
    SURFACE = frozenset({"open", "setuid", "kill", "socket", "bind"})
    IDS = ((1000, 0, 0), (1000, 1000, 1000))

    def serial_reports(self, requests):
        return [check(request.query, BUDGET) for request in requests]

    def test_batch_matches_serial_check(self):
        requests = attack_requests(self.PRIVS, *self.IDS, self.SURFACE)
        engine = QueryEngine(budget=BUDGET, cache=QueryCache())
        batch = engine.run_queries(requests)
        for batched, serial in zip(batch, self.serial_reports(requests)):
            assert batched.verdict == serial.verdict
            assert batched.witness == serial.witness

    def test_batch_dedupes_identical_queries(self):
        engine = QueryEngine(budget=BUDGET, cache=QueryCache())
        reports = engine.run_queries(
            [shadow_query("a"), shadow_query("b"), shadow_query("c")]
        )
        assert [report.query.name for report in reports] == ["a", "b", "c"]
        assert len({report.verdict for report in reports}) == 1
        assert engine.cache.misses == 3 and len(engine.cache) == 1

    def test_thread_pool_matches_serial(self):
        requests = attack_requests(self.PRIVS, *self.IDS, self.SURFACE)
        engine = QueryEngine(
            budget=BUDGET, cache=None, parallel=ParallelPolicy(mode="thread")
        )
        for threaded, serial in zip(
            engine.run_queries(requests), self.serial_reports(requests)
        ):
            assert threaded.verdict == serial.verdict
            assert threaded.witness == serial.witness

    def test_process_pool_matches_serial(self):
        requests = attack_requests(self.PRIVS, *self.IDS, self.SURFACE)
        engine = QueryEngine(
            budget=BUDGET,
            cache=None,
            parallel=ParallelPolicy(mode="process", max_workers=2),
        )
        for pooled, serial in zip(
            engine.run_queries(requests), self.serial_reports(requests)
        ):
            assert pooled.verdict == serial.verdict
            assert pooled.witness == serial.witness

    def test_process_pool_requires_specs(self):
        engine = QueryEngine(
            budget=BUDGET, cache=None, parallel=ParallelPolicy(mode="process")
        )
        with pytest.raises(ValueError, match="picklable spec"):
            engine.run_queries([shadow_query("a"), shadow_query(perms=0o600)])

    def test_auto_mode_stays_serial_at_repro_budgets(self):
        policy = ParallelPolicy()
        assert policy.resolve(8, BUDGET, all_have_specs=True) == "serial"
        paper_scale = SearchBudget(max_states=5_000_000)
        assert policy.resolve(8, paper_scale, all_have_specs=True) == "process"
        assert policy.resolve(8, paper_scale, all_have_specs=False) == "serial"

    def test_empty_batch(self):
        assert QueryEngine(budget=BUDGET).run_queries([]) == []

    def test_cache_metrics_emitted(self):
        telemetry = Telemetry.enabled()
        engine = QueryEngine(budget=BUDGET, cache=QueryCache(), telemetry=telemetry)
        engine.run_queries([shadow_query("a")])
        engine.run_queries([shadow_query("b")])
        metrics = telemetry.metrics.snapshot()
        assert metrics["rosa.cache.misses"]["value"] == 1
        assert metrics["rosa.cache.hits"]["value"] == 1
        assert metrics["rosa.batch.queries"]["value"] == 2


class TestAttackQuerySpec:
    def test_spec_pickles_and_rebuilds_identically(self):
        import pickle

        privs = CapabilitySet.of("CAP_DAC_READ_SEARCH", "CAP_SETUID")
        spec = ALL_ATTACKS[0].query_spec(
            privs, (1000, 0, 0), (1000, 1000, 1000), frozenset({"open", "setuid"})
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert isinstance(clone, AttackQuerySpec)
        built, rebuilt = spec.build(), clone.build()
        assert built.initial.key == rebuilt.initial.key
        assert built.goal_key == rebuilt.goal_key
        assert query_cache_key(built, BUDGET) == query_cache_key(rebuilt, BUDGET)


def random_configuration(rng: random.Random) -> Configuration:
    """A small random mix of objects and pending syscall messages."""
    caps = rng.sample(
        ["CapDacReadSearch", "CapSetuid", "CapKill", "CapNetBindService"],
        k=rng.randint(0, 3),
    )
    elements = [
        model.process_for_user(1, uid=rng.choice([0, 1000]), gid=1000),
        model.file_obj(3, name="/etc/shadow", owner=0, group=42,
                       perms=rng.choice([0o600, 0o640, 0o644])),
        model.user(4, 1000),
        model.user(5, 0),
    ]
    message_pool = [
        syscalls.sys_open(1, 3, "r", caps),
        syscalls.sys_setuid(1, 0, caps),
        syscalls.sys_kill(1, 1, model.SIGKILL, caps),
        syscalls.sys_chmod(1, 3, 0o777, caps),
        syscalls.sys_socket(1, caps),
    ]
    elements.extend(rng.sample(message_pool, k=rng.randint(0, len(message_pool))))
    return Configuration(elements)


class TestRuleIndexing:
    def test_indexed_successors_match_unindexed_on_random_configurations(self):
        indexed = ObjectSystem("UNIX", unix_rules(), indexed=True)
        brute = ObjectSystem("UNIX", unix_rules(), indexed=False)
        rng = random.Random(1789)
        for _ in range(50):
            config = random_configuration(rng)
            fast = [(label, nxt.key) for label, nxt in indexed.successors(config)]
            slow = [(label, nxt.key) for label, nxt in brute.successors(config)]
            assert fast == slow

    def test_indexed_verdicts_match_unindexed(self):
        base = shadow_query()
        plain = check(base, BUDGET)
        brute = check(
            dataclasses.replace(
                base, system=ObjectSystem("UNIX", unix_rules(), indexed=False)
            ),
            BUDGET,
        )
        assert plain.verdict == brute.verdict
        assert plain.witness == brute.witness
        assert plain.states_seen == brute.states_seen


class TestVerdictParity:
    """The acceptance bar: engine on vs off is bit-identical end to end."""

    @pytest.mark.parametrize("program", ["passwd", "thttpd"])
    def test_pipeline_parity_engine_on_vs_off(self, program):
        # Fresh specs per run: workload env lists are consumed by the VM.
        with_engine = PrivAnalyzer().analyze(spec_by_name(program))
        without_cache = PrivAnalyzer(use_query_cache=False).analyze(
            spec_by_name(program)
        )
        assert len(with_engine.phases) == len(without_cache.phases)
        for cached, plain in zip(with_engine.phases, without_cache.phases):
            assert cached.phase.name == plain.phase.name
            assert sorted(cached.verdicts) == sorted(plain.verdicts)
            for attack_id in cached.verdicts:
                lhs = cached.verdicts[attack_id]
                rhs = plain.verdicts[attack_id]
                assert lhs.verdict == rhs.verdict
                assert lhs.witness == rhs.witness
        for attack in ALL_ATTACKS:
            assert with_engine.vulnerability_window(
                attack.attack_id
            ) == without_cache.vulnerability_window(attack.attack_id)
        assert (
            with_engine.invulnerable_window() == without_cache.invulnerable_window()
        )

    def test_privsep_exposure_parity(self):
        from repro.core.multiprocess import analyze_multiprocess

        cached = analyze_multiprocess(spec_by_name("sshdPrivsep"))
        plain = analyze_multiprocess(spec_by_name("sshdPrivsep"))
        plain.engine = QueryEngine(cache=None)
        budget = dataclasses.replace(DEFAULT_MULTIPROCESS_BUDGET, max_states=50_000)
        assert cached.exposure_table(budget) == plain.exposure_table(budget)

    def test_pipeline_reuses_verdicts_across_phases(self):
        analyzer = PrivAnalyzer()
        analyzer.analyze(spec_by_name("passwd"))
        stats = analyzer.engine.cache_stats()
        # passwd issues 20 phase×attack queries but only 17 are distinct.
        assert stats["misses"] == 17
        assert stats["hits"] == 3
