"""Witness explanation: narrating attack recipes step by step."""

import pytest

from repro.rosa import (
    Configuration,
    RosaQuery,
    check,
    explain_witness,
    goals,
    model,
    syscalls,
)
from repro.rosa.syscalls import WILDCARD


def figure2_query():
    config = Configuration(
        [
            model.process(1, euid=10, ruid=11, suid=12, egid=10, rgid=11, sgid=12),
            model.dir_entry(2, name="/etc", owner=40, group=41, perms=0o777, inode=3),
            model.file_obj(3, name="/etc/passwd", owner=40, group=41, perms=0o000),
            model.user(4, 10),
            syscalls.sys_open(1, 3, "r"),
            syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"]),
            syscalls.sys_chown(1, WILDCARD, WILDCARD, 41, ["CapChown"]),
            syscalls.sys_chmod(1, WILDCARD, 0o777),
        ]
    )
    return RosaQuery("figure2", config, goals.file_opened_for_read(3))


class TestTrackStates:
    def test_states_cover_the_whole_path(self):
        report = check(figure2_query(), track_states=True)
        assert len(report.witness_states) == len(report.witness) + 1
        assert report.witness_states[0] == figure2_query().initial
        assert report.witness_states[-1] == report.compromised_state

    def test_untracked_by_default(self):
        report = check(figure2_query())
        assert report.witness_states == []

    def test_initial_state_goal_gives_single_state(self):
        config = Configuration(
            [model.process(1, euid=0, ruid=0, suid=0, egid=0, rgid=0, sgid=0,
                           rdfset={3})]
        )
        report = check(
            RosaQuery("trivial", config, goals.file_opened_for_read(3)),
            track_states=True,
        )
        assert report.witness == []
        assert len(report.witness_states) == 1


class TestExplanation:
    def test_narrates_each_step(self):
        report = check(figure2_query(), track_states=True)
        text = explain_witness(report)
        assert "step 1: chown" in text
        assert "owner: 40 -> 10" in text
        assert "step 2: chmod" in text
        assert "perms 0o0 -> 0o777" in text
        assert "step 3: open" in text
        assert "rd access to object(s) 3" in text
        assert text.endswith("compromised state reached.")

    def test_invulnerable_report_has_no_witness(self):
        config = Configuration(
            [
                model.process_for_user(1, uid=1000, gid=1000),
                model.file_obj(3, name="f", owner=0, group=0, perms=0o000),
                syscalls.sys_open(1, 3, "r"),
            ]
        )
        report = check(
            RosaQuery("safe", config, goals.file_opened_for_read(3)),
            track_states=True,
        )
        assert "no witness" in explain_witness(report)

    def test_requires_tracked_states(self):
        report = check(figure2_query())  # not tracked
        with pytest.raises(ValueError, match="track_states"):
            explain_witness(report)

    def test_kill_narration(self):
        victim = model.process_for_user(2, uid=2000, gid=2000)
        config = Configuration(
            [
                model.process_for_user(1, uid=1000, gid=1000),
                victim,
                syscalls.sys_kill(1, 2, model.SIGKILL, ["CapKill"]),
            ]
        )
        report = check(
            RosaQuery("kill", config, goals.process_terminated(2)),
            track_states=True,
        )
        text = explain_witness(report)
        assert "kill(1, 2, 9" in text
        assert "state: run -> dead" in text

    def test_created_object_narrated(self):
        config = Configuration(
            [
                model.process_for_user(1, uid=1000, gid=1000),
                syscalls.sys_socket(1),
                syscalls.sys_bind(1, WILDCARD, 8080),
            ]
        )

        def socket_bound(state):
            return any(s["port"] == 8080 for s in state.objects(model.SOCKET))

        report = check(RosaQuery("bind", config, socket_bound), track_states=True)
        text = explain_witness(report)
        assert "created" in text
        assert "port: 0 -> 8080" in text
