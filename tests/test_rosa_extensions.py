"""The creat/link extensions (syscalls the paper's ROSA lacked, §VI)."""

import pytest

from repro.rewriting import Configuration
from repro.rosa import RosaQuery, check, goals, model, syscalls, unix_system
from repro.rosa.syscalls import WILDCARD


def successors(config):
    return list(unix_system().successors(config))


def plain_process(**overrides):
    fields = dict(euid=1000, ruid=1000, suid=1000, egid=1000, rgid=1000, sgid=1000)
    fields.update(overrides)
    return model.process(1, **fields)


def writable_dir(oid=7, owner=1000):
    return model.dir_entry(
        oid, name="/tmp", owner=owner, group=owner, perms=0o700, inode=0
    )


class TestCreat:
    def test_creates_file_and_entry(self):
        config = Configuration(
            [plain_process(), writable_dir(),
             syscalls.sys_creat(1, 7, "evil", 0o666)]
        )
        results = successors(config)
        assert len(results) == 1
        after = results[0][1]
        files = [f for f in after.objects(model.FILE) if f["name"] == "evil"]
        assert len(files) == 1
        assert files[0]["owner"] == 1000
        entries = [e for e in after.objects(model.DIR) if e["name"] == "evil"]
        assert len(entries) == 1
        assert entries[0]["inode"] == files[0].oid

    def test_needs_directory_write(self):
        config = Configuration(
            [plain_process(euid=1001, ruid=1001, suid=1001), writable_dir(),
             syscalls.sys_creat(1, 7, "evil", 0o666)]
        )
        assert successors(config) == []

    def test_dac_override_bypasses(self):
        config = Configuration(
            [plain_process(euid=1001, ruid=1001, suid=1001), writable_dir(),
             syscalls.sys_creat(1, 7, "evil", 0o666, ["CapDacOverride"])]
        )
        assert len(successors(config)) == 1

    def test_created_file_openable(self):
        config = Configuration(
            [plain_process(), writable_dir(),
             syscalls.sys_creat(1, 7, "mine", 0o600),
             syscalls.sys_open(1, WILDCARD, "rw")]
        )

        def created_and_open(state):
            for proc in state.objects(model.PROCESS):
                for fid in proc["wrfset"]:
                    target = state.find_object(fid)
                    if target is not None and target.get("name") == "mine":
                        return True
            return False

        report = check(RosaQuery("creat-open", config, created_and_open))
        assert report.vulnerable
        assert report.witness == ["creat", "open"]


class TestLink:
    def test_creates_second_entry_same_inode(self):
        shadow = model.file_obj(3, name="/etc/shadow", owner=0, group=42, perms=0o640)
        config = Configuration(
            [plain_process(), shadow, writable_dir(),
             syscalls.sys_link(1, 3, 7, "innocent")]
        )
        results = successors(config)
        assert len(results) == 1
        after = results[0][1]
        entries = model.parent_entries(after, 3)
        assert len(entries) == 1
        assert entries[0]["name"] == "innocent"

    def test_needs_directory_write(self):
        shadow = model.file_obj(3, name="/etc/shadow", owner=0, group=42, perms=0o640)
        locked = model.dir_entry(7, name="/etc", owner=0, group=0, perms=0o755, inode=0)
        config = Configuration(
            [plain_process(), shadow, locked, syscalls.sys_link(1, 3, 7, "x")]
        )
        assert successors(config) == []

    def test_hardlink_attack_shape(self):
        """The classic: the victim file is unreachable (its own directory
        denies search), but linking it into the attacker's directory makes
        the lookup pass through the attacker-searchable entry — read access
        then only depends on the file's own mode bits."""
        secret = model.file_obj(
            3, name="/locked/secret", owner=0, group=1000, perms=0o640
        )
        locked_parent = model.dir_entry(
            5, name="/locked", owner=0, group=0, perms=0o700, inode=3
        )
        config_without_link = Configuration(
            [plain_process(), secret, locked_parent,
             syscalls.sys_open(1, 3, "r")]
        )
        assert not check(
            RosaQuery("no-link", config_without_link, goals.file_opened_for_read(3))
        ).vulnerable

        config_with_link = config_without_link.add(
            writable_dir(7), syscalls.sys_link(1, 3, 7, "alias")
        )
        report = check(
            RosaQuery("with-link", config_with_link, goals.file_opened_for_read(3))
        )
        assert report.vulnerable
        assert report.witness == ["link", "open"]

    def test_link_then_unlink_roundtrip(self):
        target = model.file_obj(3, name="f", owner=1000, group=1000, perms=0o600)
        config = Configuration(
            [plain_process(), target, writable_dir(),
             syscalls.sys_link(1, 3, 7, "alias"),
             syscalls.sys_unlink(1, WILDCARD)]
        )

        def entry_gone_again(state):
            return (
                not model.parent_entries(state, 3)
                and not list(state.messages())
            )

        report = check(RosaQuery("roundtrip", config, entry_gone_again))
        assert report.vulnerable  # reachable: link then unlink either entry


class TestDslSupport:
    def test_parse_creat_and_link(self):
        from repro.rosa.dsl import parse_query

        text = """
        < 1 : Process | euid : 1000 , ruid : 1000 , suid : 1000 ,
                        egid : 1000 , rgid : 1000 , sgid : 1000 >
        < 3 : File | name : "secret" , perms : rw-r----- , owner : 0 , group : 1000 >
        < 5 : Dir | name : "/locked" , perms : rwx------ , owner : 0 ,
                    group : 0 , inode : 3 >
        < 7 : Dir | name : "/tmp" , perms : rwx------ , owner : 1000 ,
                    group : 1000 , inode : 0 >
        link(1, 3, 7, "alias")
        open(1, 3, r, empty)
        =>* such that 3 in rdfset(1) .
        """
        report = check(parse_query(text, "hardlink"))
        assert report.vulnerable
        assert report.witness == ["link", "open"]


class TestStickyBit:
    """The restricted-deletion rule (extension beyond the paper's model)."""

    def sticky_entry(self, perms=0o1777, owner=0):
        return model.dir_entry(
            7, name="/tmp/victim", owner=owner, group=0, perms=perms, inode=3
        )

    def victim_file(self, owner=0):
        return model.file_obj(3, name="victim", owner=owner, group=0, perms=0o644)

    def test_sticky_blocks_foreign_unlink(self):
        config = Configuration(
            [plain_process(), self.victim_file(owner=0), self.sticky_entry(),
             syscalls.sys_unlink(1, 7)]
        )
        assert successors(config) == []

    def test_without_sticky_world_writable_dir_is_removable(self):
        config = Configuration(
            [plain_process(), self.victim_file(owner=0),
             self.sticky_entry(perms=0o777),
             syscalls.sys_unlink(1, 7)]
        )
        assert len(successors(config)) == 1

    def test_file_owner_may_remove(self):
        config = Configuration(
            [plain_process(), self.victim_file(owner=1000), self.sticky_entry(),
             syscalls.sys_unlink(1, 7)]
        )
        assert len(successors(config)) == 1

    def test_directory_owner_may_remove(self):
        config = Configuration(
            [plain_process(), self.victim_file(owner=0),
             self.sticky_entry(owner=1000),
             syscalls.sys_unlink(1, 7)]
        )
        assert len(successors(config)) == 1

    def test_cap_fowner_bypasses(self):
        config = Configuration(
            [plain_process(), self.victim_file(owner=0), self.sticky_entry(),
             syscalls.sys_unlink(1, 7, ["CapFowner", "CapDacOverride"])]
        )
        assert len(successors(config)) == 1

    def test_rename_also_restricted(self):
        config = Configuration(
            [plain_process(), self.victim_file(owner=0), self.sticky_entry(),
             syscalls.sys_rename(1, 7, "renamed")]
        )
        assert successors(config) == []

    def test_kernel_agrees(self):
        """The same scenario through the simulated kernel."""
        from repro.caps import CapabilitySet
        from repro.oskernel import SyscallError
        from repro.oskernel.setup import build_kernel

        kernel = build_kernel()
        kernel.fs.mkdir("/tmp", 0, 0, 0o1777)
        kernel.fs.create_file("/tmp/rootfile", 0, 0, 0o644)
        kernel.fs.create_file("/tmp/mine", 1000, 1000, 0o644)
        process = kernel.spawn(1000, 1000)
        with pytest.raises(SyscallError):
            kernel.sys_unlink(process.pid, "/tmp/rootfile")
        kernel.sys_unlink(process.pid, "/tmp/mine")  # own file: allowed
        privileged = kernel.spawn(
            1000, 1000, permitted=CapabilitySet.of("CapFowner")
        )
        kernel.sys_priv_raise(privileged.pid, CapabilitySet.of("CapFowner"))
        kernel.sys_unlink(privileged.pid, "/tmp/rootfile")


class TestSetgroups:
    """setgroups as an attack step (extension beyond the paper's model)."""

    def test_needs_cap_setgid(self):
        config = Configuration(
            [plain_process(), model.group(9, 15), syscalls.sys_setgroups(1, 15)]
        )
        assert successors(config) == []

    def test_joins_group(self):
        config = Configuration(
            [plain_process(), model.group(9, 15),
             syscalls.sys_setgroups(1, 15, ["CapSetgid"])]
        )
        results = successors(config)
        assert len(results) == 1
        after = results[0][1]
        assert 15 in after.find_object(1)["supplementary"]

    def test_devmem_via_supplementary_kmem(self):
        """A second route to attack 1 under CapSetgid: join the kmem
        group instead of switching the primary gid."""
        from repro.rosa import RosaQuery, check, goals

        config = Configuration(
            [plain_process(),
             model.file_obj(10, name="/dev/mem", owner=0, group=15, perms=0o640),
             model.group(9, 15),
             syscalls.sys_setgroups(1, WILDCARD, ["CapSetgid"]),
             syscalls.sys_open(1, WILDCARD, "r", frozenset(syscalls.caps(["CapSetgid"])))]
        )
        report = check(RosaQuery("kmem", config, goals.file_opened_for_read(10)))
        assert report.vulnerable
        assert report.witness == ["setgroups", "open"]
