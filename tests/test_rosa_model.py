"""ROSA object constructors and wildcard candidate domains."""

import pytest

from repro.rewriting import Configuration
from repro.rosa import model


class TestConstructors:
    def test_process_defaults(self):
        proc = model.process(1, euid=0, ruid=0, suid=0, egid=0, rgid=0, sgid=0)
        assert proc["state"] == model.STATE_RUN
        assert proc["rdfset"] == frozenset()
        assert proc["supplementary"] == frozenset()

    def test_process_for_user(self):
        proc = model.process_for_user(1, uid=1000, gid=2000)
        assert proc["euid"] == proc["ruid"] == proc["suid"] == 1000
        assert proc["egid"] == proc["rgid"] == proc["sgid"] == 2000

    def test_file_obj_validates_perms(self):
        with pytest.raises(ValueError):
            model.file_obj(1, name="f", owner=0, group=0, perms=0o10000)
        with pytest.raises(ValueError):
            model.file_obj(1, name="f", owner=0, group=0, perms=-1)

    def test_dir_entry_has_inode(self):
        entry = model.dir_entry(2, name="/etc", owner=0, group=0, perms=0o755, inode=3)
        assert entry["inode"] == 3
        assert entry.cls == model.DIR

    def test_socket_defaults_unbound(self):
        assert model.socket_obj(4, owner_pid=1)["port"] == 0


class TestCandidateDomains:
    def config(self):
        return Configuration(
            [
                model.process_for_user(1, uid=1000, gid=1000),
                model.process_for_user(2, uid=0, gid=0),
                model.file_obj(5, name="a", owner=0, group=0, perms=0o644),
                model.file_obj(6, name="b", owner=0, group=0, perms=0o644),
                model.dir_entry(7, name="/d", owner=0, group=0, perms=0o755, inode=5),
                model.user(10, 0),
                model.user(11, 1000),
                model.group(12, 42),
                model.port_obj(13, 22),
            ]
        )

    def test_uids_from_user_objects_only(self):
        assert model.candidate_uids(self.config()) == frozenset({0, 1000})

    def test_gids_from_group_objects_only(self):
        assert model.candidate_gids(self.config()) == frozenset({42})

    def test_files(self):
        assert model.candidate_files(self.config()) == frozenset({5, 6})

    def test_dirs(self):
        assert model.candidate_dirs(self.config()) == frozenset({7})

    def test_processes(self):
        assert model.candidate_processes(self.config()) == frozenset({1, 2})

    def test_ports_from_port_objects(self):
        assert model.candidate_ports(self.config()) == frozenset({22})

    def test_ports_default_when_absent(self):
        assert model.candidate_ports(Configuration([])) == model.DEFAULT_PORTS

    def test_fresh_oid_avoids_collisions(self):
        config = self.config()
        fresh = model.fresh_oid(config)
        assert config.find_object(fresh) is None
        assert fresh == 14

    def test_parent_entries_finds_hard_links(self):
        config = self.config().add(
            model.dir_entry(20, name="/e", owner=0, group=0, perms=0o755, inode=5)
        )
        entries = model.parent_entries(config, 5)
        assert {entry.oid for entry in entries} == {7, 20}
        assert model.parent_entries(config, 6) == []

    def test_find_process_checks_class(self):
        config = self.config()
        assert model.find_process(config, 1) is not None
        assert model.find_process(config, 5) is None  # a file, not a process
        assert model.find_process(config, 999) is None
