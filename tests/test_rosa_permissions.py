"""The DAC + capability permission rules ROSA's rewrite rules consult."""

import pytest

from repro.caps import Capability
from repro.rosa import model, permissions

NO_CAPS = frozenset()
DAC_OVERRIDE = frozenset({Capability.CAP_DAC_OVERRIDE})
DAC_READ = frozenset({Capability.CAP_DAC_READ_SEARCH})


def proc(euid=1000, egid=1000, supplementary=(), **kwargs):
    return model.process(
        1,
        euid=euid, ruid=kwargs.get("ruid", euid), suid=kwargs.get("suid", euid),
        egid=egid, rgid=kwargs.get("rgid", egid), sgid=kwargs.get("sgid", egid),
        supplementary=supplementary,
    )


def file_with(perms, owner=0, group=0):
    return model.file_obj(9, name="f", owner=owner, group=group, perms=perms)


class TestDacClassSelection:
    """Owner XOR group XOR other: the class is exclusive."""

    def test_owner_class_applies_to_owner(self):
        assert permissions.may_read(proc(euid=5), file_with(0o400, owner=5), NO_CAPS)

    def test_owner_locked_out_despite_other_bits(self):
        # Mode 0o077: the owner class has no bits even though others do.
        assert not permissions.may_read(proc(euid=5), file_with(0o077, owner=5), NO_CAPS)

    def test_group_class(self):
        assert permissions.may_read(proc(euid=5, egid=7), file_with(0o040, group=7), NO_CAPS)
        assert not permissions.may_read(proc(euid=5, egid=8), file_with(0o040, group=7), NO_CAPS)

    def test_supplementary_groups_count(self):
        reader = proc(euid=5, egid=6, supplementary=(7,))
        assert permissions.may_read(reader, file_with(0o040, group=7), NO_CAPS)

    def test_group_locked_out_despite_other_bits(self):
        assert not permissions.may_read(
            proc(euid=5, egid=7), file_with(0o004, owner=1, group=7), NO_CAPS
        )

    def test_other_class(self):
        assert permissions.may_read(proc(euid=5), file_with(0o004, owner=1, group=2), NO_CAPS)


class TestCapabilityOverrides:
    def test_dac_override_grants_read_and_write(self):
        locked = file_with(0o000)
        assert permissions.may_read(proc(), locked, DAC_OVERRIDE)
        assert permissions.may_write(proc(), locked, DAC_OVERRIDE)
        assert permissions.may_search(proc(), locked, DAC_OVERRIDE)

    def test_dac_read_search_grants_read_not_write(self):
        locked = file_with(0o000)
        assert permissions.may_read(proc(), locked, DAC_READ)
        assert not permissions.may_write(proc(), locked, DAC_READ)
        assert permissions.may_search(proc(), locked, DAC_READ)

    def test_no_caps_no_access(self):
        locked = file_with(0o000)
        assert not permissions.may_read(proc(), locked, NO_CAPS)
        assert not permissions.may_write(proc(), locked, NO_CAPS)


class TestLookup:
    def test_no_parent_entries_means_unconstrained(self):
        assert permissions.lookup_permits([], proc(), NO_CAPS)

    def test_searchable_entry_permits(self):
        entry = model.dir_entry(2, name="/d", owner=0, group=0, perms=0o711, inode=9)
        assert permissions.lookup_permits([entry], proc(), NO_CAPS)

    def test_unsearchable_entry_denies(self):
        entry = model.dir_entry(2, name="/d", owner=0, group=0, perms=0o700, inode=9)
        assert not permissions.lookup_permits([entry], proc(), NO_CAPS)

    def test_any_hard_link_suffices(self):
        locked = model.dir_entry(2, name="/a", owner=0, group=0, perms=0o700, inode=9)
        open_entry = model.dir_entry(3, name="/b", owner=0, group=0, perms=0o711, inode=9)
        assert permissions.lookup_permits([locked, open_entry], proc(), NO_CAPS)


class TestChmodChown:
    def test_chmod_needs_ownership(self):
        target = file_with(0o644, owner=1000)
        assert permissions.may_chmod(proc(euid=1000), target, NO_CAPS)
        assert not permissions.may_chmod(proc(euid=1001), target, NO_CAPS)

    def test_cap_fowner_bypasses_ownership(self):
        target = file_with(0o644, owner=0)
        assert permissions.may_chmod(
            proc(euid=1000), target, frozenset({Capability.CAP_FOWNER})
        )

    def test_chown_owner_change_needs_cap(self):
        target = file_with(0o644, owner=1000, group=1000)
        assert not permissions.may_chown(proc(euid=1000), target, 0, 1000, NO_CAPS)
        assert permissions.may_chown(
            proc(euid=1000), target, 0, 1000, frozenset({Capability.CAP_CHOWN})
        )

    def test_owner_may_give_group_to_own_group(self):
        target = file_with(0o644, owner=1000, group=1000)
        giver = proc(euid=1000, supplementary=(42,))
        assert permissions.may_chown(giver, target, 1000, 42, NO_CAPS)

    def test_owner_may_not_give_group_to_foreign_group(self):
        target = file_with(0o644, owner=1000, group=1000)
        assert not permissions.may_chown(proc(euid=1000), target, 1000, 999, NO_CAPS)

    def test_non_owner_cannot_change_group(self):
        target = file_with(0o644, owner=0, group=0)
        assert not permissions.may_chown(
            proc(euid=1000, supplementary=(42,)), target, 0, 42, NO_CAPS
        )


class TestSignals:
    def test_matching_euid_to_ruid(self):
        sender = proc(euid=5, ruid=6)
        victim = proc(euid=9, ruid=5, suid=9)
        assert permissions.may_signal(sender, victim, NO_CAPS)

    def test_matching_ruid_to_suid(self):
        sender = proc(euid=9, ruid=5)
        victim = proc(euid=8, ruid=8, suid=5)
        assert permissions.may_signal(sender, victim, NO_CAPS)

    def test_victim_euid_does_not_count(self):
        # kill(2) checks the target's real and saved ids, not effective.
        sender = proc(euid=5, ruid=5, suid=5)
        victim = proc(euid=5, ruid=9, suid=9)
        assert not permissions.may_signal(sender, victim, NO_CAPS)

    def test_cap_kill_bypasses(self):
        sender = proc(euid=5)
        victim = proc(euid=9, ruid=9, suid=9)
        assert permissions.may_signal(sender, victim, frozenset({Capability.CAP_KILL}))


class TestSetIds:
    def test_unprivileged_may_permute_current(self):
        subject = proc(euid=2, ruid=1, suid=3)
        for uid in (1, 2, 3):
            assert permissions.may_set_uid(subject, uid, NO_CAPS)
        assert not permissions.may_set_uid(subject, 0, NO_CAPS)

    def test_cap_setuid_allows_anything(self):
        subject = proc(euid=1000)
        assert permissions.may_set_uid(subject, 0, frozenset({Capability.CAP_SETUID}))

    def test_gid_analogue(self):
        subject = proc(egid=2, rgid=1, sgid=3)
        assert permissions.may_set_gid(subject, 3, NO_CAPS)
        assert not permissions.may_set_gid(subject, 0, NO_CAPS)
        assert permissions.may_set_gid(subject, 0, frozenset({Capability.CAP_SETGID}))


class TestBind:
    def test_privileged_port_needs_cap(self):
        assert not permissions.may_bind(80, NO_CAPS)
        assert permissions.may_bind(
            80, frozenset({Capability.CAP_NET_BIND_SERVICE})
        )

    def test_unprivileged_port_free(self):
        assert permissions.may_bind(8080, NO_CAPS)

    def test_boundary_port_1024_is_unprivileged(self):
        assert permissions.may_bind(1024, NO_CAPS)

    def test_port_1023_is_privileged(self):
        assert not permissions.may_bind(1023, NO_CAPS)

    def test_nonpositive_ports_rejected(self):
        assert not permissions.may_bind(0, NO_CAPS)
        assert not permissions.may_bind(-1, frozenset({Capability.CAP_NET_BIND_SERVICE}))
