"""Search profiling: attribution coverage, parity, determinism."""

from pathlib import Path

import pytest

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name
from repro.rosa import check
from repro.rosa.dsl import parse_query
from repro.telemetry import ManualClock, Profiler

pytestmark = pytest.mark.telemetry

QUERY_PATH = Path(__file__).parent.parent / "examples" / "queries" / "figure2.rosa"


def figure2_query():
    return parse_query(QUERY_PATH.read_text(), name="figure2")


class TestParity:
    """The profiler wraps injected callables; the search never changes."""

    @pytest.mark.parametrize("reduction", [True, False])
    def test_check_verdict_and_costs_identical(self, reduction):
        plain = check(figure2_query(), reduction=reduction)
        profiler = Profiler()
        profiled = check(figure2_query(), reduction=reduction, profiler=profiler)
        assert profiled.verdict is plain.verdict
        assert profiled.witness == plain.witness
        assert profiled.states_seen == plain.states_seen
        assert profiled.states_explored == plain.states_explored
        assert profiled.stats.peak_frontier == plain.stats.peak_frontier
        assert profiled.stats.dedup_hits == plain.stats.dedup_hits
        assert profiled.stats.max_depth == plain.stats.max_depth
        assert profiled.stats.symmetry_hits == plain.stats.symmetry_hits
        assert profiled.stats.por_pruned == plain.stats.por_pruned
        assert profiler.records  # and the profiler actually saw the search

    def test_analyze_verdicts_and_exposure_bit_identical(self):
        # su's instruction stream is deterministic (no clock-driven
        # loops), so the whole exposure table must match bit for bit.
        spec = spec_by_name("su")
        plain = PrivAnalyzer().analyze(spec)
        profiled = PrivAnalyzer(profiler=Profiler()).analyze(spec)
        assert profiled.render_table() == plain.render_table()
        for attack_id in sorted(plain.phases[0].verdicts):
            assert profiled.vulnerability_window(
                attack_id
            ) == plain.vulnerability_window(attack_id)
        assert profiled.invulnerable_window() == plain.invulnerable_window()

    def test_disabled_profiler_is_ignored_end_to_end(self):
        profiler = Profiler(enabled=False)
        report = check(figure2_query(), profiler=profiler)
        assert report.verdict is not None
        assert profiler.records == {}


class TestAttribution:
    def test_search_root_is_at_least_95_percent_attributed(self):
        profiler = Profiler()
        check(figure2_query(), profiler=profiler)
        roots = profiler.to_report()["roots"]
        assert roots["rosa.search"]["attributed_fraction"] >= 0.95

    def test_rule_frames_carry_attempt_and_application_counters(self):
        profiler = Profiler()
        check(figure2_query(), reduction=False, profiler=profiler)
        rules = {
            stack[1]: record
            for stack, record in profiler.records.items()
            if len(stack) == 2 and stack[1].startswith("rule:")
        }
        assert rules, "no per-rule records"
        assert all(r.counters.get("attempts", 0) > 0 for r in rules.values())
        # The figure-2 witness applies setuid/chown/chmod/open rules.
        assert rules["rule:open"].counters.get("applications", 0) > 0

    def test_reduction_phases_split_by_outcome(self):
        profiler = Profiler()
        check(figure2_query(), reduction=True, profiler=profiler)
        names = {stack[1] for stack in profiler.records if len(stack) == 2}
        # Every canonicalization outcome is a distinct frame, plus the
        # ample-set probe and the hash cost.
        assert "reduction.ample" in names
        assert names & {
            "reduction.canonical.cache_hit",
            "reduction.canonical.fast_path",
            "reduction.canonical.canonicalize",
        }
        assert "hash.incremental" in names
        assert "goal" in names

    def test_unreduced_search_still_times_hashing(self):
        profiler = Profiler()
        check(figure2_query(), reduction=False, profiler=profiler)
        assert ("rosa.search", "hash.incremental") in profiler.records


class TestPipelineFrames:
    def test_engine_and_vm_frames_present(self):
        profiler = Profiler()
        PrivAnalyzer(profiler=profiler).analyze(spec_by_name("su"))
        stacks = set(profiler.records)
        assert ("engine", "worker:0", "execute") in stacks
        assert ("engine", "worker:0", "queue_wait") in stacks
        assert ("engine", "key_derivation") in stacks
        assert ("engine", "cache.lookup") in stacks
        assert ("vm",) in stacks
        assert any(
            stack[0] == "vm" and stack[-1].startswith("op:") for stack in stacks
        )
        assert ("vm", "intrinsic:__chrono_count") in stacks
        roots = profiler.to_report()["roots"]
        assert roots["vm"]["attributed_fraction"] >= 0.95

    def test_cache_lookup_counters_match_engine_stats(self):
        profiler = Profiler()
        analyzer = PrivAnalyzer(profiler=profiler)
        analyzer.analyze(spec_by_name("su"))
        counters = profiler.records[("engine", "cache.lookup")].counters
        stats = analyzer.engine.cache_stats()
        assert counters.get("hits", 0) == stats["hits"]
        assert counters.get("misses", 0) == stats["misses"]


class TestDeterminism:
    def run_once(self):
        clock = ManualClock(tick=0.001)
        profiler = Profiler(clock=clock)
        # One clock drives both the search budget and the profiler, so
        # the interleaving of readings is identical across runs.
        check(figure2_query(), clock=clock, profiler=profiler)
        return profiler

    def test_manual_clock_reports_are_bit_identical(self):
        assert self.run_once().to_json() == self.run_once().to_json()

    def test_manual_clock_collapsed_is_bit_identical(self):
        assert self.run_once().to_collapsed() == self.run_once().to_collapsed()
