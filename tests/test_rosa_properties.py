"""Property-based tests of the ROSA model's global security laws.

These are the invariants that make ROSA's verdicts trustworthy:

* **capability monotonicity** — granting a superset of capabilities can
  never make an attack infeasible that a subset enabled;
* **state invariants** — no rewrite step creates processes, resurrects
  the dead, changes a file's identity, or shrinks an fd set;
* **budget monotonicity** — a larger message budget never removes
  reachable states.
"""

from hypothesis import given, settings, strategies as st

from repro.caps import Capability, CapabilitySet
from repro.core.attacks import ALL_ATTACKS
from repro.rewriting import Configuration
from repro.rosa import check, model, syscalls, unix_system
from repro.rosa.query import RosaQuery
from repro.rosa.syscalls import WILDCARD

INTERESTING_CAPS = [
    Capability.CAP_SETUID,
    Capability.CAP_SETGID,
    Capability.CAP_CHOWN,
    Capability.CAP_FOWNER,
    Capability.CAP_DAC_OVERRIDE,
    Capability.CAP_DAC_READ_SEARCH,
    Capability.CAP_KILL,
    Capability.CAP_NET_BIND_SERVICE,
]

SURFACE = frozenset(
    {
        "open_read", "open_write", "setuid", "setresuid", "setgid",
        "kill", "chmod", "chown", "socket", "bind",
    }
)

cap_sets = st.frozensets(st.sampled_from(INTERESTING_CAPS), max_size=3).map(
    CapabilitySet
)
attacks = st.sampled_from(ALL_ATTACKS)
uid_triples = st.sampled_from(
    [(1000, 1000, 1000), (0, 0, 0), (998, 998, 1000), (1001, 1001, 1001)]
)


@settings(max_examples=60, deadline=None)
@given(attacks, cap_sets, cap_sets, uid_triples)
def test_capability_monotonicity(attack, smaller, extra, uids):
    """vulnerable(caps) implies vulnerable(caps ∪ extra)."""
    larger = smaller | extra
    small_query = attack.build_query(smaller, uids, uids, SURFACE)
    large_query = attack.build_query(larger, uids, uids, SURFACE)
    if check(small_query).vulnerable:
        assert check(large_query).vulnerable


@settings(max_examples=40, deadline=None)
@given(attacks, cap_sets, uid_triples)
def test_bigger_syscall_budget_never_helps_defender(attack, caps, uids):
    """vulnerable with budget 1 implies vulnerable with budget 2."""
    single = attack.build_query(caps, uids, uids, SURFACE, repeat=1)
    double = attack.build_query(caps, uids, uids, SURFACE, repeat=2)
    if check(single).vulnerable:
        assert check(double).vulnerable


def _random_configuration(caps):
    capset = caps.as_frozenset()
    return Configuration(
        [
            model.process_for_user(1, uid=1000, gid=1000),
            model.process_for_user(2, uid=2000, gid=2000),
            model.file_obj(10, name="secret", owner=0, group=42, perms=0o640),
            model.dir_entry(11, name="/d", owner=0, group=0, perms=0o755, inode=10),
            model.user(20, 0),
            model.user(21, 1000),
            model.group(30, 42),
            syscalls.sys_open(1, WILDCARD, "rw", capset),
            syscalls.sys_setuid(1, WILDCARD, capset),
            syscalls.sys_chown(1, WILDCARD, WILDCARD, WILDCARD, capset),
            syscalls.sys_chmod(1, WILDCARD, 0o777, capset),
            syscalls.sys_kill(1, WILDCARD, 9, capset),
            syscalls.sys_socket(1, capset),
            syscalls.sys_bind(1, WILDCARD, WILDCARD, capset),
            syscalls.sys_unlink(1, WILDCARD, capset),
            syscalls.sys_creat(1, WILDCARD, "new", 0o600, capset),
            syscalls.sys_link(1, WILDCARD, WILDCARD, "alias", capset),
        ]
    )


def _all_reachable(config, limit=4000):
    """Explore the whole space (bounded), yielding every edge."""
    system = unix_system()
    seen = {config.key}
    frontier = [config]
    edges = []
    while frontier and len(seen) < limit:
        state = frontier.pop()
        for label, nxt in system.successors(state):
            edges.append((state, label, nxt))
            if nxt.key not in seen:
                seen.add(nxt.key)
                frontier.append(nxt)
    return edges


@settings(max_examples=15, deadline=None)
@given(cap_sets)
def test_rewrite_step_invariants(caps):
    """Structural laws every single rewrite step must respect."""
    for before, label, after in _all_reachable(_random_configuration(caps), limit=400):
        # Process population is stable (no fork/exec modeled).
        before_pids = {p.oid for p in before.objects(model.PROCESS)}
        after_pids = {p.oid for p in after.objects(model.PROCESS)}
        assert before_pids == after_pids, label

        # The dead stay dead.
        for pid in before_pids:
            if before.find_object(pid)["state"] == model.STATE_DEAD:
                assert after.find_object(pid)["state"] == model.STATE_DEAD, label

        # fd sets only grow.
        for pid in before_pids:
            assert before.find_object(pid)["rdfset"] <= after.find_object(pid)["rdfset"], label
            assert before.find_object(pid)["wrfset"] <= after.find_object(pid)["wrfset"], label

        # Exactly one message is consumed per step.
        before_messages = sum(1 for e in before if not hasattr(e, "cls"))
        after_messages = sum(1 for e in after if not hasattr(e, "cls"))
        assert after_messages == before_messages - 1, label

        # Files never vanish (only Dir entries can).
        before_files = {f.oid for f in before.objects(model.FILE)}
        after_files = {f.oid for f in after.objects(model.FILE)}
        assert before_files <= after_files, label

        # Owner changes happen only through chown/fchown/creat.
        if label not in ("chown", "fchown"):
            for fid in before_files:
                assert (
                    before.find_object(fid)["owner"] == after.find_object(fid)["owner"]
                ), label


@settings(max_examples=10, deadline=None)
@given(cap_sets)
def test_search_is_deterministic(caps):
    """The same query always yields the same verdict and witness."""
    config = _random_configuration(caps)
    from repro.rosa import goals

    query = RosaQuery("det", config, goals.file_opened_for_read(10))
    first = check(query)
    second = check(query)
    assert first.verdict == second.verdict
    assert first.witness == second.witness
    assert first.states_seen == second.states_seen
