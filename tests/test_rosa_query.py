"""End-to-end ROSA queries, including the paper's worked example."""

import pytest

from repro.rewriting import SearchBudget
from repro.rosa import (
    Configuration,
    RosaQuery,
    Verdict,
    check,
    goals,
    model,
    syscalls,
)
from repro.rosa.syscalls import WILDCARD


def figure2_configuration(with_privileges=True):
    """The paper's Figure 2: can the process read /etc/passwd (oid 3)?"""
    setuid_privs = ["CapSetuid"] if with_privileges else []
    chown_privs = ["CapChown"] if with_privileges else []
    return Configuration(
        [
            model.process(1, euid=10, ruid=11, suid=12, egid=10, rgid=11, sgid=12),
            model.dir_entry(2, name="/etc", owner=40, group=41, perms=0o777, inode=3),
            model.file_obj(3, name="/etc/passwd", owner=40, group=41, perms=0o000),
            model.user(4, 10),
            syscalls.sys_open(1, 3, "r"),
            syscalls.sys_setuid(1, WILDCARD, setuid_privs),
            syscalls.sys_chown(1, WILDCARD, WILDCARD, 41, chown_privs),
            syscalls.sys_chmod(1, WILDCARD, 0o777),
        ]
    )


class TestFigure2Example:
    def test_vulnerable_with_privileges(self):
        report = check(
            RosaQuery("fig2", figure2_configuration(), goals.file_opened_for_read(3))
        )
        assert report.verdict is Verdict.VULNERABLE

    def test_witness_matches_papers_solution(self):
        """§V-B walks the solution: chown, then chmod, then open."""
        report = check(
            RosaQuery("fig2", figure2_configuration(), goals.file_opened_for_read(3))
        )
        assert report.witness == ["chown", "chmod", "open"]

    def test_invulnerable_without_privileges(self):
        report = check(
            RosaQuery(
                "fig2-noprivs",
                figure2_configuration(with_privileges=False),
                goals.file_opened_for_read(3),
            )
        )
        assert report.verdict is Verdict.INVULNERABLE

    def test_compromised_state_carried_in_report(self):
        report = check(
            RosaQuery("fig2", figure2_configuration(), goals.file_opened_for_read(3))
        )
        assert report.compromised_state is not None
        assert 3 in report.compromised_state.find_object(1)["rdfset"]

    def test_setuid_alone_insufficient(self):
        """Without chown/chmod the setuid identity cannot reach mode-000."""
        config = Configuration(
            [
                model.process(1, euid=10, ruid=11, suid=12, egid=10, rgid=11, sgid=12),
                model.file_obj(3, name="/etc/passwd", owner=40, group=41, perms=0o000),
                model.user(4, 10),
                model.user(5, 40),
                syscalls.sys_open(1, 3, "r"),
                syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"]),
            ]
        )
        report = check(RosaQuery("setuid-only", config, goals.file_opened_for_read(3)))
        assert report.verdict is Verdict.INVULNERABLE

    def test_setuid_to_owner_reads_owner_readable_file(self):
        config = Configuration(
            [
                model.process(1, euid=10, ruid=11, suid=12, egid=10, rgid=11, sgid=12),
                model.file_obj(3, name="/etc/passwd", owner=40, group=41, perms=0o400),
                model.user(4, 40),
                syscalls.sys_open(1, 3, "r"),
                syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"]),
            ]
        )
        report = check(RosaQuery("setuid-owner", config, goals.file_opened_for_read(3)))
        assert report.vulnerable
        assert report.witness == ["setuid", "open"]


class TestVerdicts:
    def test_timeout_verdict(self):
        config = figure2_configuration()
        report = check(
            RosaQuery("tight", config, lambda c: False),
            budget=SearchBudget(max_states=2),
        )
        assert report.verdict is Verdict.TIMEOUT
        assert not report.vulnerable

    def test_symbols(self):
        assert Verdict.VULNERABLE.symbol == "✓"
        assert Verdict.INVULNERABLE.symbol == "✗"
        assert Verdict.TIMEOUT.symbol == "⊙"

    def test_summary_mentions_witness(self):
        report = check(
            RosaQuery("fig2", figure2_configuration(), goals.file_opened_for_read(3))
        )
        assert "chown -> chmod -> open" in report.summary()


class TestGoals:
    def test_any_of_all_of(self):
        config = figure2_configuration()
        always = goals.any_of(lambda c: False, lambda c: True)
        never = goals.all_of(lambda c: False, lambda c: True)
        assert always(config)
        assert not never(config)

    def test_file_opened_for_write_distinct_from_read(self):
        proc = model.process(
            1, euid=0, ruid=0, suid=0, egid=0, rgid=0, sgid=0, rdfset={3}
        )
        config = Configuration([proc])
        assert goals.file_opened_for_read(3)(config)
        assert not goals.file_opened_for_write(3)(config)

    def test_goal_scoped_to_pid(self):
        proc = model.process(
            7, euid=0, ruid=0, suid=0, egid=0, rgid=0, sgid=0, rdfset={3}
        )
        config = Configuration([proc])
        assert goals.file_opened_for_read(3, pid=7)(config)
        assert not goals.file_opened_for_read(3, pid=8)(config)

    def test_file_owner_is(self):
        config = Configuration(
            [model.file_obj(3, name="f", owner=40, group=41, perms=0o644)]
        )
        assert goals.file_owner_is(3, 40)(config)
        assert not goals.file_owner_is(3, 0)(config)

    def test_entry_removed(self):
        config = Configuration(
            [model.dir_entry(7, name="d", owner=0, group=0, perms=0o755, inode=3)]
        )
        assert not goals.entry_removed(7)(config)
        assert goals.entry_removed(7)(config.remove(config.find_object(7)))


class TestSearchSpaceBehaviour:
    """§VIII: failing attacks explore the whole space; successes are fast."""

    def test_failing_query_explores_more_states(self):
        vulnerable = check(
            RosaQuery("v", figure2_configuration(), goals.file_opened_for_read(3))
        )
        invulnerable = check(
            RosaQuery(
                "i",
                figure2_configuration(with_privileges=False),
                goals.file_opened_for_read(3),
            )
        )
        # The unsuccessful search must enumerate every reachable state;
        # the successful one stops at the first witness.
        assert invulnerable.states_explored >= 1
        vulnerable_total = vulnerable.states_seen
        assert vulnerable.states_explored <= vulnerable_total
