"""Per-syscall rewrite rules: wildcard expansion, consumption, effects."""

import pytest

from repro.rewriting import Configuration
from repro.rosa import model, syscalls, unix_system
from repro.rosa.syscalls import KEEP, WILDCARD


def successors(config):
    return list(unix_system().successors(config))


def single_successor(config):
    results = successors(config)
    assert len(results) == 1, [label for label, _ in results]
    return results[0][1]


def plain_process(**overrides):
    fields = dict(euid=1000, ruid=1000, suid=1000, egid=1000, rgid=1000, sgid=1000)
    fields.update(overrides)
    return model.process(1, **fields)


def shadow_file(perms=0o640, owner=0, group=42):
    return model.file_obj(5, name="/etc/shadow", owner=owner, group=group, perms=perms)


class TestOpenRule:
    def test_open_denied_without_permission(self):
        config = Configuration(
            [plain_process(), shadow_file(), syscalls.sys_open(1, 5, "r")]
        )
        assert successors(config) == []

    def test_open_succeeds_with_cap(self):
        config = Configuration(
            [plain_process(), shadow_file(),
             syscalls.sys_open(1, 5, "r", ["CapDacReadSearch"])]
        )
        after = single_successor(config)
        assert 5 in after.find_object(1)["rdfset"]
        assert list(after.messages("open")) == []  # message consumed

    def test_open_rw_updates_both_sets(self):
        config = Configuration(
            [plain_process(), shadow_file(perms=0o666),
             syscalls.sys_open(1, 5, "rw")]
        )
        after = single_successor(config)
        assert 5 in after.find_object(1)["rdfset"]
        assert 5 in after.find_object(1)["wrfset"]

    def test_open_rw_needs_both_permissions(self):
        # CapDacReadSearch grants read only; O_RDWR must fail.
        config = Configuration(
            [plain_process(), shadow_file(perms=0o000),
             syscalls.sys_open(1, 5, "rw", ["CapDacReadSearch"])]
        )
        assert successors(config) == []

    def test_wildcard_fid_expands_over_files(self):
        config = Configuration(
            [plain_process(),
             model.file_obj(5, name="a", owner=1000, group=1000, perms=0o600),
             model.file_obj(6, name="b", owner=1000, group=1000, perms=0o600),
             syscalls.sys_open(1, WILDCARD, "r")]
        )
        results = successors(config)
        opened = {next(iter(c.find_object(1)["rdfset"])) for _, c in results}
        assert opened == {5, 6}

    def test_parent_directory_gates_open(self):
        entry = model.dir_entry(7, name="/etc", owner=0, group=0, perms=0o700, inode=5)
        config = Configuration(
            [plain_process(), shadow_file(perms=0o644), entry,
             syscalls.sys_open(1, 5, "r")]
        )
        assert successors(config) == []

    def test_dead_process_cannot_open(self):
        dead = plain_process(state=model.STATE_DEAD)
        config = Configuration(
            [dead, shadow_file(perms=0o644), syscalls.sys_open(1, 5, "r")]
        )
        assert successors(config) == []


class TestSetuidRules:
    def test_privileged_setuid_sets_all_three(self):
        config = Configuration(
            [plain_process(), model.user(9, 0),
             syscalls.sys_setuid(1, 0, ["CapSetuid"])]
        )
        after = single_successor(config)
        target = after.find_object(1)
        assert (target["ruid"], target["euid"], target["suid"]) == (0, 0, 0)

    def test_unprivileged_setuid_to_saved(self):
        config = Configuration(
            [plain_process(suid=1001), syscalls.sys_setuid(1, 1001)]
        )
        after = single_successor(config)
        target = after.find_object(1)
        assert target["euid"] == 1001
        assert target["ruid"] == 1000  # only effective changes

    def test_unprivileged_setuid_to_foreign_blocked(self):
        config = Configuration([plain_process(), syscalls.sys_setuid(1, 0)])
        assert successors(config) == []

    def test_wildcard_uid_uses_user_objects(self):
        config = Configuration(
            [plain_process(), model.user(9, 0), model.user(10, 555),
             syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"])]
        )
        new_euids = {c.find_object(1)["euid"] for _, c in successors(config)}
        assert new_euids == {0, 555}

    def test_seteuid_changes_effective_only(self):
        config = Configuration(
            [plain_process(suid=7), syscalls.sys_seteuid(1, 7)]
        )
        after = single_successor(config)
        assert after.find_object(1)["euid"] == 7
        assert after.find_object(1)["suid"] == 7
        assert after.find_object(1)["ruid"] == 1000

    def test_setresuid_keep_leaves_slot(self):
        config = Configuration(
            [plain_process(), model.user(9, 42),
             syscalls.sys_setresuid(1, KEEP, 42, KEEP, ["CapSetuid"])]
        )
        after = single_successor(config)
        target = after.find_object(1)
        assert (target["ruid"], target["euid"], target["suid"]) == (1000, 42, 1000)

    def test_setresuid_unprivileged_permutes(self):
        config = Configuration(
            [plain_process(suid=7), syscalls.sys_setresuid(1, 7, 7, 7)]
        )
        after = single_successor(config)
        assert after.find_object(1)["ruid"] == 7

    def test_setresuid_unprivileged_foreign_blocked(self):
        config = Configuration(
            [plain_process(), syscalls.sys_setresuid(1, 0, 0, 0)]
        )
        assert successors(config) == []


class TestSetgidRules:
    def test_privileged_setgid(self):
        config = Configuration(
            [plain_process(), model.group(9, 42),
             syscalls.sys_setgid(1, 42, ["CapSetgid"])]
        )
        after = single_successor(config)
        assert after.find_object(1)["egid"] == 42
        assert after.find_object(1)["rgid"] == 42

    def test_setegid_unprivileged_to_saved(self):
        config = Configuration(
            [plain_process(sgid=15), syscalls.sys_setegid(1, 15)]
        )
        after = single_successor(config)
        assert after.find_object(1)["egid"] == 15

    def test_setresgid_wildcards(self):
        config = Configuration(
            [plain_process(), model.group(9, 15),
             syscalls.sys_setresgid(1, KEEP, WILDCARD, KEEP, ["CapSetgid"])]
        )
        after = single_successor(config)
        assert after.find_object(1)["egid"] == 15


class TestKillRule:
    def victim(self, uid=2000):
        return model.process(
            2, euid=uid, ruid=uid, suid=uid, egid=uid, rgid=uid, sgid=uid
        )

    def test_kill_foreign_denied(self):
        config = Configuration(
            [plain_process(), self.victim(),
             syscalls.sys_kill(1, 2, model.SIGKILL)]
        )
        assert successors(config) == []

    def test_kill_with_cap(self):
        config = Configuration(
            [plain_process(), self.victim(),
             syscalls.sys_kill(1, 2, model.SIGKILL, ["CapKill"])]
        )
        after = single_successor(config)
        assert after.find_object(2)["state"] == model.STATE_DEAD

    def test_kill_after_setuid_identity_change(self):
        # The classic attack-4 recipe: setuid(victim) then kill.
        config = Configuration(
            [plain_process(), self.victim(), model.user(9, 2000),
             syscalls.sys_setuid(1, WILDCARD, ["CapSetuid"]),
             syscalls.sys_kill(1, WILDCARD, model.SIGKILL)]
        )
        from repro.rosa import RosaQuery, check, goals

        report = check(RosaQuery("kill-via-setuid", config, goals.process_terminated(2)))
        assert report.vulnerable
        assert report.witness == ["setuid", "kill"]

    def test_nonfatal_signal_consumes_message_only(self):
        config = Configuration(
            [plain_process(), self.victim(),
             syscalls.sys_kill(1, 2, 15, ["CapKill"])]  # SIGTERM modeled non-state-changing
        )
        after = single_successor(config)
        assert after.find_object(2)["state"] == model.STATE_RUN

    def test_dead_victim_not_rekillable(self):
        dead = self.victim().update(state=model.STATE_DEAD)
        config = Configuration(
            [plain_process(), dead, syscalls.sys_kill(1, 2, model.SIGKILL, ["CapKill"])]
        )
        assert successors(config) == []


class TestChmodChownRules:
    def test_chmod_as_owner(self):
        target = model.file_obj(5, name="f", owner=1000, group=1000, perms=0o600)
        config = Configuration(
            [plain_process(), target, syscalls.sys_chmod(1, 5, 0o777)]
        )
        after = single_successor(config)
        assert after.find_object(5)["perms"] == 0o777

    def test_chmod_same_mode_is_not_a_transition(self):
        target = model.file_obj(5, name="f", owner=1000, group=1000, perms=0o777)
        config = Configuration(
            [plain_process(), target, syscalls.sys_chmod(1, 5, 0o777)]
        )
        assert successors(config) == []

    def test_fchmod_requires_open_file(self):
        target = model.file_obj(5, name="f", owner=1000, group=1000, perms=0o600)
        config = Configuration(
            [plain_process(), target, syscalls.sys_fchmod(1, 5, 0o777)]
        )
        assert successors(config) == []
        opened = plain_process(rdfset={5})
        config2 = Configuration(
            [opened, target, syscalls.sys_fchmod(1, 5, 0o777)]
        )
        assert len(successors(config2)) == 1

    def test_chown_with_cap_expands_wildcards(self):
        target = model.file_obj(5, name="f", owner=0, group=0, perms=0o600)
        config = Configuration(
            [plain_process(), target, model.user(9, 1000), model.group(10, 1000),
             syscalls.sys_chown(1, 5, WILDCARD, WILDCARD, ["CapChown"])]
        )
        after = single_successor(config)
        assert after.find_object(5)["owner"] == 1000
        assert after.find_object(5)["group"] == 1000


class TestDirectoryRules:
    def entry(self, perms=0o755):
        return model.dir_entry(7, name="/tmp/x", owner=1000, group=1000, perms=perms, inode=5)

    def test_unlink_needs_write_and_search(self):
        config = Configuration(
            [plain_process(euid=1001, ruid=1001, suid=1001), self.entry(0o755),
             syscalls.sys_unlink(1, 7)]
        )
        assert successors(config) == []

    def test_unlink_removes_entry(self):
        config = Configuration(
            [plain_process(), self.entry(0o700), syscalls.sys_unlink(1, 7)]
        )
        after = single_successor(config)
        assert after.find_object(7) is None

    def test_rename_changes_name(self):
        config = Configuration(
            [plain_process(), self.entry(0o700),
             syscalls.sys_rename(1, 7, "/tmp/y")]
        )
        after = single_successor(config)
        assert after.find_object(7)["name"] == "/tmp/y"


class TestSocketRules:
    def test_socket_creates_fresh_object(self):
        config = Configuration([plain_process(), syscalls.sys_socket(1)])
        after = single_successor(config)
        sockets = list(after.objects(model.SOCKET))
        assert len(sockets) == 1
        assert sockets[0]["port"] == 0
        assert sockets[0]["owner_pid"] == 1

    def test_bind_privileged_port_needs_cap(self):
        sock = model.socket_obj(3, owner_pid=1)
        config = Configuration(
            [plain_process(), sock, syscalls.sys_bind(1, 3, 22)]
        )
        assert successors(config) == []
        config2 = Configuration(
            [plain_process(), sock,
             syscalls.sys_bind(1, 3, 22, ["CapNetBindService"])]
        )
        after = single_successor(config2)
        assert after.find_object(3)["port"] == 22

    def test_bind_unprivileged_port(self):
        sock = model.socket_obj(3, owner_pid=1)
        config = Configuration(
            [plain_process(), sock, syscalls.sys_bind(1, 3, 8080)]
        )
        after = single_successor(config)
        assert after.find_object(3)["port"] == 8080

    def test_bind_rejects_port_in_use(self):
        bound = model.socket_obj(3, owner_pid=1, port=8080)
        fresh = model.socket_obj(4, owner_pid=1)
        config = Configuration(
            [plain_process(), bound, fresh, syscalls.sys_bind(1, 4, 8080)]
        )
        assert successors(config) == []

    def test_bind_only_own_sockets(self):
        foreign = model.socket_obj(3, owner_pid=99)
        config = Configuration(
            [plain_process(), foreign, syscalls.sys_bind(1, 3, 8080)]
        )
        assert successors(config) == []

    def test_socket_then_bind_sequence(self):
        from repro.rosa import RosaQuery, check, goals

        config = Configuration(
            [plain_process(),
             syscalls.sys_socket(1, ["CapNetBindService"]),
             syscalls.sys_bind(1, WILDCARD, WILDCARD, ["CapNetBindService"])]
        )
        report = check(
            RosaQuery("bind", config, goals.socket_bound_to_privileged_port(pid=1))
        )
        assert report.vulnerable
        assert report.witness == ["socket", "bind"]

    def test_connect_consumes_message(self):
        sock = model.socket_obj(3, owner_pid=1)
        config = Configuration(
            [plain_process(), sock, syscalls.sys_connect(1, 3, 80)]
        )
        after = single_successor(config)
        assert list(after.messages()) == []


class TestMessageMultiplicity:
    def test_message_included_twice_usable_twice(self):
        """ROSA bounds syscall counts by message multiplicity (§V-B)."""
        target_a = model.file_obj(5, name="a", owner=1000, group=1000, perms=0o600)
        target_b = model.file_obj(6, name="b", owner=1000, group=1000, perms=0o600)
        message = syscalls.sys_open(1, WILDCARD, "r")
        config = Configuration([plain_process(), target_a, target_b, message, message])
        from repro.rosa import RosaQuery, check, goals

        both = goals.all_of(
            goals.file_opened_for_read(5), goals.file_opened_for_read(6)
        )
        report = check(RosaQuery("two-opens", config, both))
        assert report.vulnerable

        single = Configuration([plain_process(), target_a, target_b, message])
        report2 = check(RosaQuery("one-open", single, both))
        assert not report2.vulnerable
