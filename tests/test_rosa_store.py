"""The shared verdict store: fleet-wide compute-once, fail-closed serving.

The acceptance bar has two halves.  Efficiency: a second engine (or a
second process, or a second client of ``privanalyzer serve``) over a
warm store must serve its searches from disk instead of re-running BFS.
Safety: nothing is ever served that cannot be re-attested — corruption,
schema skew, or a foreign rule system mean recompute, never trust.
"""

import dataclasses
import hashlib
import json
import multiprocessing
import threading
import time

import pytest

from repro.caps import CapabilitySet
from repro.rewriting import SearchBudget
from repro.rosa import QueryCache, QueryEngine, query_cache_key
from repro.rosa.engine import CachedOutcome, advisory_lock, read_cache_entries
from repro.rosa.store import (
    STORE_SCHEMA_VERSION,
    SharedVerdictStore,
    SingleFlight,
    attest,
    rule_signature_hex,
)
from repro.testkit.oracles import report_fingerprint

from tests.test_rosa_engine import BUDGET, attack_requests, shadow_query


def outcome_for(index: int) -> CachedOutcome:
    """A synthetic, deterministic outcome distinguishable per index."""
    return CachedOutcome(
        verdict="vulnerable" if index % 2 else "invulnerable",
        witness=(f"rule-{index}", "open-file"),
        states_explored=100 + index,
        states_seen=200 + index,
        elapsed=0.0,
        peak_frontier=3,
        dedup_hits=index,
        max_depth=4,
    )


def key_for(index: int) -> str:
    return hashlib.sha256(b"stress-key-%d" % index).hexdigest()


class TestAdvisoryLock:
    def test_lock_creates_and_removes_lockfile(self, tmp_path):
        target = str(tmp_path / "cache.json")
        with advisory_lock(target):
            assert (tmp_path / "cache.json.lock").exists()
        assert not (tmp_path / "cache.json.lock").exists()

    def test_contended_lock_times_out_loudly(self, tmp_path):
        target = str(tmp_path / "cache.json")
        with advisory_lock(target):
            with pytest.raises(TimeoutError, match="could not acquire"):
                with advisory_lock(target, timeout=0.05):
                    pass  # pragma: no cover

    def test_stale_lock_is_broken(self, tmp_path):
        target = str(tmp_path / "cache.json")
        lock = tmp_path / "cache.json.lock"
        lock.write_text("99999")
        stale = time.time() - 120.0
        import os

        os.utime(lock, (stale, stale))
        with advisory_lock(target, timeout=1.0, stale_after=30.0):
            pass  # the orphan was broken, not waited out
        assert not lock.exists()


class TestQueryCacheMergeOnSave:
    def test_two_caches_union_instead_of_clobbering(self, tmp_path):
        """The persistence race: last save must not drop the first's work."""
        path = str(tmp_path / "cache.json")
        a = QueryCache(path=path)
        b = QueryCache(path=path)  # loaded before a saved: sees nothing
        a.put(key_for(1), outcome_for(1))
        b.put(key_for(2), outcome_for(2))
        assert a.save()
        assert b.save()  # merges on disk, does not replace
        entries = read_cache_entries(path)
        assert set(entries) == {key_for(1), key_for(2)}

        fresh = QueryCache(path=path)
        assert len(fresh) == 2
        assert fresh.get(key_for(1)).outcome == outcome_for(1)
        assert fresh.get(key_for(2)).outcome == outcome_for(2)

    def test_disk_keeps_union_beyond_memory_capacity(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = QueryCache(capacity=2, path=path)
        for index in range(5):
            cache.put(key_for(index), outcome_for(index))
            assert cache.save()
        assert len(cache) == 2  # the LRU bounds memory...
        # ...while successive merges kept every entry ever saved.
        assert set(read_cache_entries(path)) == {key_for(i) for i in range(5)}

    def test_corrupt_file_on_disk_is_ignored_not_propagated(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{definitely not json")
        cache = QueryCache(path=str(path))
        assert len(cache) == 0
        cache.put(key_for(0), outcome_for(0))
        assert cache.save()
        assert set(read_cache_entries(str(path))) == {key_for(0)}


class TestSharedVerdictStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        key = key_for(0)
        assert store.get(key) is None  # cold miss
        assert store.put(key, outcome_for(0)) is True
        served = store.get(key)
        assert served == outcome_for(0)
        assert dataclasses.asdict(served) == dataclasses.asdict(outcome_for(0))
        assert store.hits == 1 and store.misses == 1 and store.published == 1

    def test_publish_is_idempotent(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        key = key_for(1)
        assert store.put(key, outcome_for(1)) is True
        assert store.put(key, outcome_for(1)) is False  # already attested
        assert store.published == 1
        assert store.entry_count() == 1

    def test_second_handle_serves_what_first_published(self, tmp_path):
        first = SharedVerdictStore(tmp_path)
        first.put(key_for(2), outcome_for(2))
        second = SharedVerdictStore(tmp_path)
        assert second.get(key_for(2)) == outcome_for(2)
        assert second.hits == 1 and second.rejected == 0

    def test_tampered_outcome_is_rejected_and_recomputable(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        key = key_for(3)
        store.put(key, outcome_for(3))
        path = store._path(key)
        entry = json.loads(path.read_text())
        entry["outcome"]["verdict"] = "invulnerable"  # flip the verdict
        path.write_text(json.dumps(entry))

        assert store.get(key) is None  # fail closed: never served
        assert store.rejected == 1
        # Publishing again is the repair path.
        assert store.put(key, outcome_for(3)) is True
        assert store.get(key) == outcome_for(3)

    def test_truncated_object_is_rejected(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        key = key_for(4)
        store.put(key, outcome_for(4))
        store._path(key).write_text('{"schema": 1, "ke')  # torn write
        assert store.get(key) is None
        assert store.rejected == 1

    def test_schema_skew_is_rejected(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        key = key_for(5)
        store.put(key, outcome_for(5))
        path = store._path(key)
        entry = json.loads(path.read_text())
        entry["schema"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(key) is None
        assert store.rejected == 1

    def test_foreign_rule_signature_is_rejected(self, tmp_path):
        writer = SharedVerdictStore(tmp_path)
        key = key_for(6)
        writer.put(key, outcome_for(6))
        reader = SharedVerdictStore(tmp_path)
        reader.signature = "0" * 64  # a store bound to other rules
        assert reader.get(key) is None
        assert reader.rejected == 1

    def test_attestation_covers_every_field(self, tmp_path):
        signature = rule_signature_hex()
        base = attest(key_for(7), outcome_for(7), signature)
        assert attest(key_for(8), outcome_for(7), signature) != base
        assert attest(key_for(7), outcome_for(8), signature) != base
        assert attest(key_for(7), outcome_for(7), "0" * 64) != base

    def test_lineage_records_every_publish(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        for index in range(3):
            store.put(key_for(index), outcome_for(index))
        store.put(key_for(0), outcome_for(0))  # idempotent: no new record
        records = store.lineage()
        assert [r["key"] for r in records] == [key_for(i) for i in range(3)]
        for record in records:
            assert record["signature"] == store.signature
            assert "ts" in record and "pid" in record

    def test_stats_shape(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        store.put(key_for(0), outcome_for(0))
        store.get(key_for(0))
        store.get(key_for(1))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["published"] == 1 and stats["rejected"] == 0
        assert stats["schema"] == STORE_SCHEMA_VERSION


# -- multi-process stress ------------------------------------------------------

STRESS_KEYS = 24


def _stress_writer(root: str, worker: int, barrier) -> None:
    """Publish every stress key, racing the other writers."""
    store = SharedVerdictStore(root)
    barrier.wait()
    indices = list(range(STRESS_KEYS))
    # Different walk order per worker maximises same-key collisions.
    if worker % 2:
        indices.reverse()
    for index in indices:
        store.put(key_for(index), outcome_for(index))


def _stress_reader(root: str, barrier, failures) -> None:
    """Read every key repeatedly while writers race; report anomalies."""
    store = SharedVerdictStore(root)
    barrier.wait()
    for _ in range(30):
        for index in range(STRESS_KEYS):
            served = store.get(key_for(index))
            if served is not None and served != outcome_for(index):
                failures.put(f"torn read at key {index}: {served!r}")
                return
    if store.rejected:
        failures.put(f"reader rejected {store.rejected} entries mid-race")


class TestMultiProcessStress:
    def test_n_writers_m_readers_no_lost_or_torn_entries(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(6)
        failures = ctx.Queue()
        writers = [
            ctx.Process(target=_stress_writer, args=(str(tmp_path), w, barrier))
            for w in range(3)
        ]
        readers = [
            ctx.Process(target=_stress_reader, args=(str(tmp_path), barrier, failures))
            for _ in range(3)
        ]
        procs = writers + readers
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert failures.empty(), failures.get()

        # No lost entries: every key landed exactly once, all attested.
        store = SharedVerdictStore(tmp_path)
        assert store.entry_count() == STRESS_KEYS
        for index in range(STRESS_KEYS):
            assert store.get(key_for(index)) == outcome_for(index)
        assert store.rejected == 0
        # Lineage saw at least one publish per key (racing duplicates of
        # an already-valid object return False and add no record).
        lineage_keys = {record["key"] for record in store.lineage()}
        assert lineage_keys == {key_for(i) for i in range(STRESS_KEYS)}


class TestSingleFlight:
    def test_leader_computes_joiner_is_served(self, tmp_path):
        flight = SingleFlight(SharedVerdictStore(tmp_path), timeout=10.0)
        key = key_for(0)
        assert flight.get(key) is None  # this thread is now the leader
        results = []

        def joiner():
            results.append(flight.get(key))

        thread = threading.Thread(target=joiner)
        thread.start()
        time.sleep(0.05)  # let the joiner block on the in-flight event
        assert flight.put(key, outcome_for(0)) is True
        thread.join(timeout=10)
        assert results == [outcome_for(0)]
        assert flight.leaders == 1
        assert flight.joined == 1
        # One search ran; the joiner never became a second leader.
        assert flight.store.published == 1

    def test_joiner_falls_back_to_live_compute_on_leader_death(self, tmp_path):
        flight = SingleFlight(SharedVerdictStore(tmp_path), timeout=0.05)
        key = key_for(1)
        assert flight.get(key) is None  # leader acquires... and "dies"
        assert flight.get(key) is None  # joiner times out: compute live
        # The fallback publish releases the flight for everyone.
        assert flight.put(key, outcome_for(1)) is True
        assert flight.get(key) == outcome_for(1)

    def test_warm_hits_bypass_coalescing(self, tmp_path):
        flight = SingleFlight(SharedVerdictStore(tmp_path))
        flight.get(key_for(2))
        flight.put(key_for(2), outcome_for(2))
        assert flight.get(key_for(2)) == outcome_for(2)
        stats = flight.stats()
        assert stats["single_flight"] == {"leaders": 1, "joined": 0, "inflight": 0}


# -- engine integration --------------------------------------------------------


class TestEngineIntegration:
    def test_second_engine_is_store_served_and_bit_identical(self, tmp_path):
        requests = attack_requests(
            CapabilitySet.of("CAP_DAC_READ_SEARCH", "CAP_SETUID", "CAP_KILL"),
            (1000, 0, 0),
            (1000, 1000, 1000),
            frozenset({"open", "setuid", "kill", "socket", "bind"}),
            repeat=2,
        )
        budget = SearchBudget(max_states=20_000, max_seconds=20.0)

        cold_store = SharedVerdictStore(tmp_path)
        cold = QueryEngine(budget=budget, cache=QueryCache(), store=cold_store)
        cold_reports = cold.run_queries(requests)
        assert cold_store.published > 0
        assert cold_store.hits == 0

        warm_store = SharedVerdictStore(tmp_path)
        warm = QueryEngine(budget=budget, cache=QueryCache(), store=warm_store)
        warm_reports = warm.run_queries(requests)

        lookups = warm_store.hits + warm_store.misses
        assert lookups > 0
        assert warm_store.hits / lookups >= 0.9  # the perf-gate bar
        assert warm_store.rejected == 0
        for cold_report, warm_report in zip(cold_reports, warm_reports):
            assert report_fingerprint(cold_report) == report_fingerprint(
                warm_report
            )
        assert all(report.from_cache for report in warm_reports)

    def test_single_check_consults_store_before_searching(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        first = QueryEngine(budget=BUDGET, cache=QueryCache(), store=store)
        report = first.check(shadow_query())
        assert not report.from_cache
        assert store.published == 1

        second = QueryEngine(
            budget=BUDGET, cache=QueryCache(), store=SharedVerdictStore(tmp_path)
        )
        served = second.check(shadow_query("same-content-other-name"))
        assert served.from_cache
        assert report_fingerprint(served) == report_fingerprint(report)

    def test_store_hit_warms_the_in_memory_cache(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        QueryEngine(budget=BUDGET, cache=QueryCache(), store=store).check(
            shadow_query()
        )
        warm_store = SharedVerdictStore(tmp_path)
        engine = QueryEngine(
            budget=BUDGET, cache=QueryCache(), store=warm_store
        )
        engine.check(shadow_query())
        engine.check(shadow_query())
        # Disk was read once; the second check hit the L1.
        assert warm_store.hits == 1
        assert engine.cache.hits == 1

    def test_cache_stats_reports_the_attached_store(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        engine = QueryEngine(budget=BUDGET, cache=QueryCache(), store=store)
        engine.check(shadow_query())
        stats = engine.cache_stats()
        assert stats["store"]["published"] == 1
        assert stats["store"]["entries"] == 1

    def test_store_key_is_the_canonical_query_key(self, tmp_path):
        store = SharedVerdictStore(tmp_path)
        engine = QueryEngine(budget=BUDGET, cache=QueryCache(), store=store)
        query = shadow_query()
        engine.check(query)
        key = query_cache_key(
            query, BUDGET, reduction=engine._effective_reduction(query)
        )
        assert store._path(key).exists()
