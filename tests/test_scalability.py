"""Repo-scale smoke tests: the toolchain on machine-generated programs.

The paper's programs are 9–83 kSLOC of C; our models are small by
design, but the toolchain itself must not fall over on larger inputs.
These tests generate PrivC programs two orders of magnitude bigger than
the models and run the full pipeline, bounding wall-clock loosely enough
for slow CI machines.
"""

import time

import pytest

from repro.autopriv import transform_module
from repro.caps import CapabilitySet
from repro.chronopriv import instrument_module
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.passes import optimize_module
from repro.oskernel.setup import UID_USER, GID_USER, build_kernel
from repro.vm import Interpreter


def generate_wide_program(function_count: int) -> str:
    """Many small functions, a fraction of them privileged, all called."""
    parts = []
    for index in range(function_count):
        if index % 10 == 0:
            parts.append(
                f"""
int worker{index}(int x) {{
    priv_raise(CAP_DAC_READ_SEARCH);
    int n = strlen(getspnam("user"));
    priv_lower(CAP_DAC_READ_SEARCH);
    return x + n;
}}"""
            )
        else:
            parts.append(
                f"""
int worker{index}(int x) {{
    int y = x * {index % 7 + 1} + {index};
    if (y % 2 == 0) {{ y = y + 3; }}
    return y;
}}"""
            )
    calls = "\n".join(
        f"    acc = worker{index}(acc);" for index in range(function_count)
    )
    return "\n".join(parts) + f"""
void main() {{
    int acc = 1;
{calls}
    print_int(acc);
    exit(0);
}}
"""


def generate_deep_cfg(block_count: int) -> str:
    """One function with a long if/else ladder — a CFG stress test."""
    ladder = "\n".join(
        f"    if (acc % {index + 2} == 0) {{ acc = acc + {index}; }}"
        f" else {{ acc = acc - 1; }}"
        for index in range(block_count)
    )
    return f"""
void main() {{
    int acc = 1000;
{ladder}
    print_int(acc);
    exit(0);
}}
"""


class TestScalability:
    @pytest.mark.parametrize("function_count", [200])
    def test_wide_program_full_pipeline(self, function_count):
        source = generate_wide_program(function_count)
        start = time.monotonic()
        module = compile_source(source)
        transform_module(module, CapabilitySet.of("CapDacReadSearch"))
        instrument_module(module)
        verify_module(module)
        kernel = build_kernel()
        process = kernel.spawn(
            UID_USER, GID_USER, permitted=CapabilitySet.of("CapDacReadSearch")
        )
        vm = Interpreter(module, kernel, process)
        code = vm.run()
        elapsed = time.monotonic() - start
        assert code == 0
        assert process.caps.permitted == CapabilitySet.empty()
        assert elapsed < 60, f"pipeline took {elapsed:.1f}s on {function_count} functions"

    @pytest.mark.parametrize("block_count", [300])
    def test_deep_cfg_analyses(self, block_count):
        source = generate_deep_cfg(block_count)
        start = time.monotonic()
        module = compile_source(source)
        optimize_module(module)
        transform_module(module, CapabilitySet.of("CapSetuid"))
        instrument_module(module)
        verify_module(module)
        kernel = build_kernel()
        process = kernel.spawn(UID_USER, GID_USER, permitted=CapabilitySet.of("CapSetuid"))
        vm = Interpreter(module, kernel, process)
        assert vm.run() == 0
        elapsed = time.monotonic() - start
        assert elapsed < 60, f"deep CFG took {elapsed:.1f}s"

    def test_dataflow_fixpoint_on_many_functions(self):
        """Interprocedural liveness over a 100-function call graph."""
        from repro.autopriv import analyze_module

        source = generate_wide_program(100)
        module = compile_source(source)
        liveness = analyze_module(module)
        privileged = [
            function
            for function in module.defined_functions()
            if liveness.uses[function]
        ]
        # Every tenth worker plus main (transitively).
        assert len(privileged) == 10 + 1
