"""The ``privanalyzer serve`` control plane, end to end over real sockets.

A server thread with a store in ``tmp_path``, real clients over
loopback.  The headline property is the serve-smoke gate's: a second
client asking the same questions must be store-served (``store_hits /
lookups >= 0.9``) with responses identical to the first client's, and
concurrent cold clients must not duplicate work (total publishes equal
the store's distinct objects).
"""

import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServeClient,
    ServeError,
    VerdictServer,
    protocol,
)

FIGURE2 = (Path(__file__).parent.parent / "examples" / "queries" / "figure2.rosa")


@pytest.fixture()
def server(tmp_path):
    """A live VerdictServer on an ephemeral loopback port."""
    instance = VerdictServer(str(tmp_path / "store"))
    port_file = tmp_path / "port"
    thread = threading.Thread(
        target=instance.run, kwargs={"port_file": str(port_file)}, daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while not port_file.exists():
        assert time.monotonic() < deadline, "server never published its port"
        time.sleep(0.01)
    host, port = port_file.read_text().strip().rsplit(":", 1)
    instance.test_address = (host, int(port))
    yield instance
    try:
        with ServeClient(*instance.test_address, timeout=10.0) as client:
            client.shutdown()
    except (ConnectionError, OSError):
        pass  # the test already shut it down
    thread.join(timeout=10.0)
    assert not thread.is_alive()


def connect(server, timeout=120.0):
    return ServeClient(*server.test_address, timeout=timeout)


def served_fraction(response):
    served = response["served"]
    lookups = served["store_hits"] + served["store_misses"]
    return served["store_hits"] / lookups if lookups else 0.0


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "ping", "id": 7}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError, match="want object"):
            protocol.decode(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.decode(b"{nope\n")

    def test_envelopes(self):
        good = protocol.ok("ping", {"pong": True}, 3, {"store_hits": 1})
        assert good["ok"] and good["id"] == 3 and "served" in good
        bad = protocol.error("rosa", "boom", 4)
        assert not bad["ok"] and bad["error"] == "boom" and bad["id"] == 4


class TestControlOps:
    def test_ping(self, server):
        with connect(server) as client:
            assert client.ping() == {"pong": True, "protocol": PROTOCOL_VERSION}

    def test_stats_shape(self, server):
        with connect(server) as client:
            client.ping()
            stats = client.stats()
        assert stats["protocol"] == PROTOCOL_VERSION
        assert stats["uptime_seconds"] >= 0
        assert stats["requests"]["ping"] == 1
        assert stats["store"]["entries"] == 0
        assert "single_flight" in stats["store"]

    def test_metrics_is_prometheus_text(self, server):
        with connect(server) as client:
            client.ping()
            text = client.metrics_text()
        assert "serve_requests" in text
        assert "rosa_store_entries" in text

    def test_unknown_op_keeps_the_connection(self, server):
        with connect(server) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request("launder")
            assert client.ping()["pong"]  # same connection still fine

    def test_garbage_line_keeps_the_connection(self, server):
        with connect(server) as client:
            client._sock.sendall(b"this is not json\n")
            response = protocol.decode(client._reader.readline())
            assert response["ok"] is False
            assert "undecodable" in response["error"]
            assert client.ping()["pong"]

    def test_request_id_is_echoed(self, server):
        with connect(server) as client:
            response = client.request("ping")
            assert response["id"] == 1
            response = client.request("ping")
            assert response["id"] == 2


class TestRosaOp:
    def test_figure2_query_over_the_wire(self, server):
        text = FIGURE2.read_text()
        with connect(server) as client:
            first = client.rosa(text, name="figure2")
        assert first["result"]["verdict"] == "vulnerable"
        assert first["result"]["witness"]
        assert first["served"]["published"] == 1
        assert first["served"]["store_hits"] == 0

        with connect(server) as client:
            second = client.rosa(text, name="figure2-again")
        assert second["served"]["store_hits"] == 1
        assert second["served"]["published"] == 0
        assert second["result"]["verdict"] == first["result"]["verdict"]
        assert second["result"]["witness"] == first["result"]["witness"]
        assert second["result"]["from_cache"] is True

    def test_rosa_requires_text(self, server):
        with connect(server) as client:
            with pytest.raises(ServeError, match="non-empty 'text'"):
                client.request("rosa")


class TestAnalyzeOp:
    def test_second_client_is_store_served_and_identical(self, server):
        with connect(server) as client:
            first = client.analyze("passwd")
        assert first["served"]["store_hits"] == 0
        assert first["served"]["published"] > 0

        with connect(server) as client:
            second = client.analyze("passwd")
        assert served_fraction(second) >= 0.9  # the serve-smoke bar
        assert second["served"]["published"] == 0
        assert first["result"] == second["result"]

    def test_unknown_program_is_an_error_response(self, server):
        with connect(server) as client:
            with pytest.raises(ServeError):
                client.analyze("no-such-program")
            assert client.ping()["pong"]

    def test_concurrent_cold_clients_never_duplicate_work(self, server):
        responses = []
        lock = threading.Lock()

        def worker():
            with connect(server) as client:
                response = client.analyze("passwd")
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert len(responses) == 2
        assert responses[0]["result"] == responses[1]["result"]
        # Publishes across the fleet equal the distinct objects landed:
        # racing clients coalesced or deduped, never double-published.
        total_published = sum(r["served"]["published"] for r in responses)
        with connect(server) as client:
            stats = client.stats()
        assert total_published == stats["store"]["entries"]


class TestCorpusOp:
    def test_corpus_slice_and_warm_serving(self, server):
        with connect(server) as client:
            first = client.corpus(seed=7, generated=2)
        programs = first["result"]["programs"]
        assert first["result"]["corpus_seed"] == 7
        assert len(programs) == 2
        assert first["served"]["published"] > 0

        with connect(server) as client:
            second = client.corpus(seed=7, generated=2)
        assert served_fraction(second) >= 0.9
        assert second["result"] == first["result"]

    def test_limit_truncates(self, server):
        with connect(server) as client:
            response = client.corpus(seed=7, generated=2, limit=1)
        assert len(response["result"]["programs"]) == 1


class TestShutdown:
    def test_shutdown_stops_the_server(self, server):
        with connect(server) as client:
            assert client.shutdown() == {"stopping": True}
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                with ServeClient(*server.test_address, timeout=1.0):
                    time.sleep(0.05)
            except (ConnectionError, OSError):
                break
        else:
            pytest.fail("server kept accepting after shutdown")


class TestMetricsAccounting:
    def test_store_counters_fold_into_the_dashboard(self, server):
        with connect(server) as client:
            client.analyze("passwd")
            client.analyze("passwd")
            text = client.metrics_text()
        lines = {
            line.split()[0]: float(line.split()[1])
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        assert lines["privanalyzer_rosa_store_published_total"] > 0
        assert lines["privanalyzer_rosa_store_hits_total"] > 0
        assert lines["privanalyzer_rosa_store_entries"] == lines["privanalyzer_rosa_store_published_total"]
