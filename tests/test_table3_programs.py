"""Integration: the five Table III programs, phase structure and verdicts.

These tests pin the *shape* the paper reports (§VII-C): which privilege
sets appear, in what order, with which credentials, roughly what share
of execution each gets, and the full ✓/✗ verdict grid per attack.

One deliberate deviation is asserted as such: the original passwd's
final phases run with euid 0, which by plain DAC can open /dev/mem
(owned root:kmem 640) — the paper's §VII-D1 prose agrees even though its
Table III marks those cells ✗ (see EXPERIMENTS.md).
"""

import pytest

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.programs import spec_by_name


@pytest.fixture(scope="module")
def analyzer():
    return PrivAnalyzer()


@pytest.fixture(scope="module")
def ping_analysis(analyzer):
    return analyzer.analyze(spec_by_name("ping"))


@pytest.fixture(scope="module")
def thttpd_analysis(analyzer):
    return analyzer.analyze(spec_by_name("thttpd"))


@pytest.fixture(scope="module")
def passwd_analysis(analyzer):
    return analyzer.analyze(spec_by_name("passwd"))


@pytest.fixture(scope="module")
def su_analysis(analyzer):
    return analyzer.analyze(spec_by_name("su"))


@pytest.fixture(scope="module")
def sshd_analysis(analyzer):
    return analyzer.analyze(spec_by_name("sshd"))


def grid(analysis):
    """The verdict grid as strings, one row per phase."""
    return [phase.symbols() for phase in analysis.phases]


def privs(analysis):
    return [phase.phase.privileges.describe() for phase in analysis.phases]


class TestPing:
    """Paper: invulnerable to every modeled attack in every phase."""

    def test_three_phases(self, ping_analysis):
        assert privs(ping_analysis) == [
            "CapNetAdmin,CapNetRaw",
            "CapNetAdmin",
            "(empty)",
        ]

    def test_never_vulnerable(self, ping_analysis):
        assert ping_analysis.invulnerable_window() == 1.0
        for row in grid(ping_analysis):
            assert row == "✗ ✗ ✗ ✗"

    def test_drops_privileges_early(self, ping_analysis):
        # Paper: 97.21 % of execution with the empty set.
        empty_phase = ping_analysis.phases[-1].phase
        assert empty_phase.percent > 90

    def test_uid_never_changes(self, ping_analysis):
        for phase in ping_analysis.phases:
            assert phase.phase.uids == (1000, 1000, 1000)


class TestThttpd:
    """Paper: all-clear for ≈90 %; bindable while CapNetBindService lives."""

    def test_phase_progression(self, thttpd_analysis):
        sequence = privs(thttpd_analysis)
        assert sequence[0] == (
            "CapChown,CapSetgid,CapSetuid,CapNetBindService,CapSysChroot"
        )
        assert sequence[-1] == "(empty)"
        # Monotone shrinkage: each later set is a subset of each earlier.
        sets = [phase.phase.privileges for phase in thttpd_analysis.phases]
        for earlier, later in zip(sets, sets[1:]):
            assert later.issubset(earlier)

    def test_full_set_phase_vulnerable_to_everything(self, thttpd_analysis):
        assert grid(thttpd_analysis)[0] == "✓ ✓ ✓ ✓"

    def test_attack3_tracks_netbind(self, thttpd_analysis):
        for phase in thttpd_analysis.phases:
            can_bind = "CapNetBindService" in phase.phase.privileges
            assert phase.vulnerable_to(3) == can_bind

    def test_final_phase_dominates_and_is_safe(self, thttpd_analysis):
        final = thttpd_analysis.phases[-1]
        assert final.phase.percent > 80
        assert not final.vulnerable_to_any()

    def test_invulnerable_window_matches_paper_shape(self, thttpd_analysis):
        # Paper: 90.16 % all-clear.
        assert thttpd_analysis.invulnerable_window() > 0.8


class TestPasswd:
    """Paper: powerful privileges retained for ≈99 % of execution."""

    def test_five_phases(self, passwd_analysis):
        assert privs(passwd_analysis) == [
            "CapChown,CapDacOverride,CapDacReadSearch,CapFowner,CapSetuid",
            "CapChown,CapDacOverride,CapFowner,CapSetuid",
            "CapChown,CapDacOverride,CapFowner,CapSetuid",
            "CapChown,CapDacOverride,CapFowner",
            "(empty)",
        ]

    def test_setuid_to_root_midway(self, passwd_analysis):
        uid_rows = [phase.phase.uids for phase in passwd_analysis.phases]
        assert uid_rows[0] == (1000, 1000, 1000)
        assert uid_rows[2] == (0, 0, 0)
        assert uid_rows[4] == (0, 0, 0)

    def test_hashing_phase_dominates(self, passwd_analysis):
        # Paper: 59.15 % under {Setuid, DacOverride, Chown, Fowner}.
        assert passwd_analysis.phases[1].phase.percent == pytest.approx(59, abs=8)

    def test_update_phase_share(self, passwd_analysis):
        # Paper: 36.75 % writing the new shadow database.
        assert passwd_analysis.phases[3].phase.percent == pytest.approx(37, abs=8)

    def test_verdict_grid(self, passwd_analysis):
        rows = grid(passwd_analysis)
        assert rows[0] == "✓ ✓ ✗ ✓"
        assert rows[1] == "✓ ✓ ✗ ✓"
        assert rows[2] == "✓ ✓ ✗ ✓"
        # No CapSetuid and a foreign-owned victim: attack 4 dies (paper ✗).
        assert rows[3] == "✓ ✓ ✗ ✗"
        # Documented deviation: euid 0 + DAC still reads/writes /dev/mem.
        assert rows[4] == "✓ ✓ ✗ ✗"

    def test_attack4_window_matches_paper(self, passwd_analysis):
        # Paper: vulnerable to attacks 1,2,4 for ≈63 % of execution.
        assert passwd_analysis.vulnerability_window(4) == pytest.approx(0.63, abs=0.1)

    def test_password_actually_changed(self, passwd_analysis):
        assert "passwd: password updated successfully" in passwd_analysis.stdout


class TestSu:
    """Paper: vulnerable to attacks 1/2/4 for ≈88 % of execution."""

    def test_six_phases(self, su_analysis):
        assert privs(su_analysis) == [
            "CapDacReadSearch,CapSetgid,CapSetuid",
            "CapSetgid,CapSetuid",
            "CapSetgid,CapSetuid",
            "CapSetuid",
            "CapSetuid",
            "(empty)",
        ]

    def test_credential_progression(self, su_analysis):
        rows = [
            (phase.phase.uids, phase.phase.gids) for phase in su_analysis.phases
        ]
        assert rows[0] == ((1000, 1000, 1000), (1000, 1000, 1000))
        assert rows[2][1] == (1001, 1001, 1001)  # gids switch first
        assert rows[4][0] == (1001, 1001, 1001)  # then uids
        assert rows[5] == ((1001, 1001, 1001), (1001, 1001, 1001))

    def test_authentication_dominates(self, su_analysis):
        # Paper: 82.10 % in the first phase.
        assert su_analysis.phases[0].phase.percent == pytest.approx(82, abs=8)

    def test_verdict_grid(self, su_analysis):
        rows = grid(su_analysis)
        for row in rows[:5]:
            assert row == "✓ ✓ ✗ ✓"
        assert rows[5] == "✗ ✗ ✗ ✗"

    def test_vulnerability_window_matches_paper(self, su_analysis):
        # Paper: ≈88 % vulnerable to attacks 1, 2 and 4.
        assert su_analysis.vulnerability_window(1) == pytest.approx(0.88, abs=0.06)
        assert su_analysis.vulnerability_window(4) == pytest.approx(0.88, abs=0.06)

    def test_command_ran_as_target(self, su_analysis):
        assert "ls" in su_analysis.stdout


class TestSshd:
    """Paper: everything except CapNetBindService stays for ≈100 %."""

    def test_four_phases_all_privileged(self, sshd_analysis):
        assert len(sshd_analysis.phases) == 4
        for phase in sshd_analysis.phases:
            assert phase.phase.privileges  # never empty

    def test_only_netbind_is_dropped(self, sshd_analysis):
        first = sshd_analysis.phases[0].phase.privileges
        second = sshd_analysis.phases[1].phase.privileges
        assert first - second == CapabilitySet.of("CapNetBindService")
        # ...and nothing else ever drops.
        final = sshd_analysis.phases[-1].phase.privileges
        assert final == second

    def test_syschroot_kept_by_conservative_callgraph(self, sshd_analysis):
        """No executed path chroots, yet the capability survives: the
        indirect-call over-approximation of §VII-C."""
        for phase in sshd_analysis.phases:
            assert "CapSysChroot" in phase.phase.privileges

    def test_main_loop_dominates(self, sshd_analysis):
        # Paper: 98.94 % in the connection-processing phase.
        assert sshd_analysis.phases[1].phase.percent > 90

    def test_verdict_grid(self, sshd_analysis):
        rows = grid(sshd_analysis)
        assert rows[0] == "✓ ✓ ✓ ✓"
        for row in rows[1:]:
            assert row == "✓ ✓ ✗ ✓"

    def test_vulnerable_for_entire_run(self, sshd_analysis):
        assert sshd_analysis.vulnerability_window(1) == pytest.approx(1.0)
        assert sshd_analysis.vulnerability_window(4) == pytest.approx(1.0)

    def test_session_switched_to_client_user(self, sshd_analysis):
        assert sshd_analysis.phases[-1].phase.uids == (1001, 1001, 1001)

    def test_scp_payload_served(self, sshd_analysis):
        assert any("scp chunks" in line for line in sshd_analysis.stdout)


class TestTable2Metadata:
    def test_all_five_programs_compile_and_have_sloc(self):
        for name in ("passwd", "ping", "sshd", "su", "thttpd"):
            spec = spec_by_name(name)
            assert spec.sloc > 40, name

    def test_descriptions_match_table2(self):
        assert "web server" in spec_by_name("thttpd").description
        assert "passwords" in spec_by_name("passwd").description
        assert "another user" in spec_by_name("su").description
