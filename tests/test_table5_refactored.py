"""Integration: the refactored passwd and su (Table V).

The paper's bottom line: after the two refactoring lessons (§VII-E),
powerful privileges are permitted for only ≈4 % (passwd) and ≈1 % (su)
of execution, and the bulk of both programs runs invulnerable to all
four modeled attacks.  The paper's ⊙ (timeout) cells complete as ✗ here
because our state spaces are smaller; EXPERIMENTS.md records the mapping.
"""

import pytest

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.programs import spec_by_name


@pytest.fixture(scope="module")
def passwd_ref(request):
    return PrivAnalyzer().analyze(spec_by_name("passwdRef"))


@pytest.fixture(scope="module")
def su_ref(request):
    return PrivAnalyzer().analyze(spec_by_name("suRef"))


@pytest.fixture(scope="module")
def passwd_orig():
    return PrivAnalyzer().analyze(spec_by_name("passwd"))


@pytest.fixture(scope="module")
def su_orig():
    return PrivAnalyzer().analyze(spec_by_name("su"))


def privs(analysis):
    return [phase.phase.privileges.describe() for phase in analysis.phases]


class TestRefactoredPasswd:
    def test_five_phases(self, passwd_ref):
        assert privs(passwd_ref) == [
            "CapSetgid,CapSetuid",
            "CapSetgid,CapSetuid",
            "CapSetgid",
            "CapSetgid",
            "(empty)",
        ]

    def test_credential_plan(self, passwd_ref):
        rows = [(p.phase.uids, p.phase.gids) for p in passwd_ref.phases]
        assert rows[0][0] == (1000, 1000, 1000)
        # After the early setresuid: real/effective = etc, saved = invoker.
        assert rows[1][0] == (998, 998, 1000)
        # After setegid(shadow group):
        assert rows[3][1] == (1000, 42, 1000)
        assert rows[4][0] == (998, 998, 1000)

    def test_unprivileged_phase_dominates(self, passwd_ref):
        # Paper: 95.99 % with the empty set.
        final = passwd_ref.phases[-1].phase
        assert final.privileges == CapabilitySet.empty()
        assert final.percent > 88

    def test_verdict_grid(self, passwd_ref):
        rows = [p.symbols() for p in passwd_ref.phases]
        assert rows[0] == "✓ ✓ ✗ ✓"
        assert rows[1] == "✓ ✓ ✗ ✓"
        # CapSetgid alone: read /dev/mem via the kmem group, nothing else.
        assert rows[2] == "✓ ✗ ✗ ✗"
        assert rows[3] == "✓ ✗ ✗ ✗"  # paper shows ⊙ for attack 2 here
        assert rows[4] == "✗ ✗ ✗ ✗"

    def test_invulnerable_window_matches_paper(self, passwd_ref):
        # Paper: all-clear for ≈96 % of execution.
        assert passwd_ref.invulnerable_window() == pytest.approx(0.96, abs=0.08)

    def test_password_still_works(self, passwd_ref):
        assert "passwd: password updated successfully" in passwd_ref.stdout

    def test_improvement_over_original(self, passwd_ref, passwd_orig):
        """The paper's headline: 97 % → 4 % read/write exposure."""
        assert passwd_orig.vulnerability_window(1) > 0.95
        assert passwd_ref.vulnerability_window(1) < 0.12
        assert passwd_orig.vulnerability_window(2) > 0.95
        assert passwd_ref.vulnerability_window(2) < 0.08


class TestRefactoredSu:
    def test_seven_phases(self, su_ref):
        assert privs(su_ref) == [
            "CapSetgid,CapSetuid",
            "CapSetgid,CapSetuid",
            "CapSetgid",
            "CapSetgid",
            "(empty)",
            "(empty)",
            "(empty)",
        ]

    def test_identity_planting(self, su_ref):
        rows = [(p.phase.uids, p.phase.gids) for p in su_ref.phases]
        # euid -> etc (shadow owner), suid -> target, ruid untouched.
        assert rows[1][0] == (1000, 998, 1001)
        # gid plan: egid -> etc (sulog), sgid -> target.
        assert rows[3][1] == (1000, 998, 1001)
        # Final identity: the target user, via unprivileged setres[ug]id.
        assert rows[6] == ((1001, 1001, 1001), (1001, 1001, 1001))

    def test_authentication_runs_unprivileged(self, su_ref):
        # The big phase (paper: 86.69 %) must have an empty permitted set.
        biggest = max(su_ref.phases, key=lambda p: p.phase.instruction_count)
        assert biggest.phase.privileges == CapabilitySet.empty()
        assert biggest.phase.percent > 80

    def test_verdict_grid(self, su_ref):
        rows = [p.symbols() for p in su_ref.phases]
        assert rows[0] == "✓ ✓ ✗ ✓"
        assert rows[1] == "✓ ✓ ✗ ✓"
        assert rows[2] == "✓ ✗ ✗ ✗"  # paper: ✓ ⊙ ✗ ✗
        assert rows[3] == "✓ ✗ ✗ ✗"  # paper: ✓ ⊙ ✗ ✗
        for row in rows[4:]:
            assert row == "✗ ✗ ✗ ✗"  # paper's ⊙ cells complete as ✗ here

    def test_invulnerable_window_matches_paper(self, su_ref):
        # Paper (counting ⊙ as invulnerable): ≈99 %.
        assert su_ref.invulnerable_window() > 0.97

    def test_improvement_over_original(self, su_ref, su_orig):
        assert su_orig.vulnerability_window(1) > 0.8
        assert su_ref.vulnerability_window(1) < 0.03
        assert su_orig.vulnerability_window(4) > 0.8
        assert su_ref.vulnerability_window(4) < 0.02

    def test_command_still_runs(self, su_ref):
        assert "ls" in su_ref.stdout


class TestTable4RefactoringSize:
    """The paper's Table IV point: the refactors are *small*."""

    def test_source_delta_is_modest(self):
        for original, refactored in (("passwd", "passwdRef"), ("su", "suRef")):
            original_sloc = spec_by_name(original).sloc
            refactored_sloc = spec_by_name(refactored).sloc
            # Same order of magnitude, within ~25 % of each other.
            assert abs(original_sloc - refactored_sloc) <= original_sloc * 0.25

    def test_refactored_need_fewer_capabilities(self):
        assert len(spec_by_name("passwdRef").permitted) < len(
            spec_by_name("passwd").permitted
        )
        assert spec_by_name("suRef").permitted == CapabilitySet.of(
            "CapSetuid", "CapSetgid"
        )
