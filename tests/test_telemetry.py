"""The telemetry layer: spans, metrics, exporters, search progress."""

import json

import pytest

from repro.rewriting import SearchBudget, breadth_first_search
from repro.telemetry import (
    ManualClock,
    MetricsRegistry,
    Telemetry,
    Tracer,
    metrics_to_jsonl,
    render_metrics,
    render_profile,
    render_span_tree,
    spans_from_jsonl,
    spans_to_jsonl,
)

pytestmark = pytest.mark.telemetry


class TestManualClock:
    def test_tick_advances_after_each_reading(self):
        clock = ManualClock(start=5.0, tick=2.0)
        assert [clock(), clock(), clock()] == [5.0, 7.0, 9.0]

    def test_advance(self):
        clock = ManualClock()
        clock.advance(3.5)
        assert clock() == 3.5

    def test_clocks_only_run_forward(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestTracer:
    def test_nesting_and_exact_durations(self):
        clock = ManualClock(tick=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # Clock readings: outer.start=0, inner.start=1, inner.end=2, outer.end=3.
        assert inner.duration == 1.0
        assert outer.duration == 3.0
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.depth == 1 and outer.depth == 0

    def test_finish_order_is_children_first(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert tracer.names() == ["b", "c", "a"]

    def test_siblings_get_distinct_ids_and_same_parent(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("root") as root:
            with tracer.span("one") as one:
                pass
            with tracer.span("two") as two:
                pass
        assert one.span_id != two.span_id
        assert one.parent_id == two.parent_id == root.span_id

    def test_attributes_at_open_and_during(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("work", program="passwd") as span:
            span.set_attribute("states", 42)
        assert span.attributes == {"program": "passwd", "states": 42}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.finished
        assert span.attributes["error"] == "ValueError: boom"
        assert span.end is not None

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_disabled_tracer_records_nothing(self):
        """The guard: with telemetry off, no spans exist at all."""
        tracer = Tracer(enabled=False)
        with tracer.span("anything", key="value") as span:
            span.set_attribute("more", 1)
            with tracer.span("nested"):
                pass
        assert tracer.finished == []
        assert tracer.current is None

    def test_disabled_span_is_shared_and_inert(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_clear_resets_ids(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("a"):
            pass
        tracer.clear()
        with tracer.span("b") as span:
            pass
        assert span.span_id == 1
        assert tracer.names() == ["b"]


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1)

    def test_gauge_set_and_set_max(self):
        gauge = MetricsRegistry().gauge("frontier")
        gauge.set(10)
        gauge.set_max(7)
        assert gauge.value == 10
        gauge.set_max(12)
        assert gauge.value == 12

    def test_histogram_aggregates(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.min == 1.0 and histogram.max == 4.0
        assert histogram.mean == 2.5
        assert histogram.stddev == pytest.approx(1.118033988749895)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_name_sorted_and_jsonable(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(2)
        registry.counter("a").inc()
        registry.histogram("c").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b", "c"]
        json.dumps(snapshot)  # must not raise


class TestExporters:
    def _traced(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("pipeline.analyze", program="su"):
            with tracer.span("compile"):
                pass
            with tracer.span("rosa.query", verdict="invulnerable"):
                pass
        return tracer

    def test_jsonl_round_trip(self):
        tracer = self._traced()
        restored = spans_from_jsonl(spans_to_jsonl(tracer))
        assert len(restored) == 3
        by_name = {span["name"]: span for span in restored}
        assert by_name["compile"]["parent_id"] == by_name["pipeline.analyze"]["span_id"]
        assert by_name["rosa.query"]["attributes"] == {"verdict": "invulnerable"}
        # Durations survive exactly (floats, no formatting loss).
        assert by_name["compile"]["duration"] == 1.0

    def test_jsonl_is_one_valid_object_per_line(self):
        for line in spans_to_jsonl(self._traced()).splitlines():
            assert isinstance(json.loads(line), dict)

    def test_tree_renders_nesting(self):
        tree = render_span_tree(self._traced())
        lines = tree.splitlines()
        assert lines[0].startswith("pipeline.analyze")
        assert lines[1].startswith("  compile")
        assert "verdict=invulnerable" in lines[2]

    def test_profile_aggregates_by_name(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("step"):
                    pass
        profile = render_profile(tracer)
        step_row = next(line for line in profile.splitlines() if line.startswith("step"))
        assert " 3 " in step_row  # three calls aggregated into one row

    def test_empty_tracer_renders_placeholder(self):
        tracer = Tracer(clock=ManualClock())
        assert "no spans" in render_span_tree(tracer)
        assert "no spans" in render_profile(tracer)

    def test_metrics_jsonl_and_table(self):
        registry = MetricsRegistry()
        registry.counter("rosa.queries").inc(20)
        registry.histogram("rosa.query_seconds").observe(0.25)
        lines = [json.loads(line) for line in metrics_to_jsonl(registry).splitlines()]
        assert {line["name"] for line in lines} == {"rosa.queries", "rosa.query_seconds"}
        table = render_metrics(registry)
        assert "rosa.queries" in table and "value=20" in table


class TestTelemetryBundle:
    def test_disabled_is_inert(self):
        telemetry = Telemetry.disabled()
        assert not telemetry.active
        assert telemetry.audit is None
        with telemetry.tracer.span("x"):
            pass
        assert telemetry.tracer.finished == []

    def test_enabled_with_audit(self):
        telemetry = Telemetry.enabled(audit=True, audit_capacity=16)
        assert telemetry.active
        assert telemetry.audit is not None
        assert telemetry.audit.capacity == 16


class TestSearchProgress:
    """Search cost accounting and periodic progress sampling."""

    @staticmethod
    def _successors(state):
        return [("s", state * 2 + 1), ("s", state * 2 + 2)]

    def test_stats_always_populated(self):
        result = breadth_first_search(
            0, self._successors, lambda s: s == 6, SearchBudget(max_states=None)
        )
        assert result.found
        assert result.stats.peak_frontier >= 2
        assert result.stats.max_depth >= 1
        assert result.stats.samples == []

    def test_dedup_hits_counted(self):
        # Both rules map everything to one successor: all but the first
        # expansion of it are dedup hits.
        result = breadth_first_search(
            0,
            lambda state: [("a", 1), ("b", 1)],
            lambda state: False,
            SearchBudget(max_states=None),
        )
        assert result.stats.dedup_hits == 3  # 0 yields one dup, 1 yields two

    def test_progress_samples_at_interval(self):
        clock = ManualClock(tick=0.001)
        seen = []
        result = breadth_first_search(
            0,
            self._successors,
            lambda state: False,
            SearchBudget(max_states=100, max_seconds=None),
            progress=seen.append,
            progress_interval=10,
            clock=clock,
        )
        assert seen, "expected at least one progress sample"
        assert seen == result.stats.samples
        first = seen[0]
        assert first.states_explored == 10
        assert first.states_per_second > 0
        assert 0.0 < first.budget_used <= 1.0
        # Samples are monotone in explored states and elapsed time.
        for earlier, later in zip(seen, seen[1:]):
            assert later.states_explored > earlier.states_explored
            assert later.elapsed >= earlier.elapsed

    def test_no_callback_means_no_sampling(self):
        result = breadth_first_search(
            0,
            self._successors,
            lambda state: False,
            SearchBudget(max_states=50),
            progress_interval=5,
        )
        assert result.stats.samples == []

    def test_deterministic_elapsed_with_manual_clock(self):
        clock = ManualClock(tick=1.0)
        result = breadth_first_search(
            0, self._successors, lambda s: s == 2, SearchBudget(), clock=clock
        )
        # clock(): start=0, elapsed computed on one further reading per
        # budget check plus the final one — all integral with tick=1.
        assert result.elapsed == int(result.elapsed)
        assert result.elapsed > 0
