"""The kernel syscall audit trail: ordering, credentials, ring bounds."""

import json

import pytest

from repro.caps import Capability, CapabilitySet
from repro.frontend import compile_source
from repro.oskernel import Kernel, SyscallError
from repro.oskernel.setup import build_kernel
from repro.telemetry import ManualClock, SyscallAuditTrail
from repro.vm import Interpreter

pytestmark = pytest.mark.telemetry


class TestKernelAudit:
    def test_disabled_by_default(self):
        kernel = Kernel()
        assert kernel.audit is None
        process = kernel.spawn(1000, 1000)
        kernel.sys_getuid(process.pid)  # must not blow up without a trail

    def test_records_in_call_order_with_results(self):
        kernel = build_kernel()
        trail = kernel.enable_audit(SyscallAuditTrail(clock=ManualClock(tick=1.0)))
        process = kernel.spawn(0, 0)
        fd = kernel.sys_open(process.pid, "/etc/passwd", "r")
        kernel.sys_read(process.pid, fd)
        kernel.sys_close(process.pid, fd)
        assert trail.syscall_names() == ["open", "read", "close"]
        assert [entry.seq for entry in trail.records] == [1, 2, 3]
        assert [entry.time for entry in trail.records] == [0.0, 1.0, 2.0]
        open_entry = trail.records[0]
        assert open_entry.pid == process.pid
        assert open_entry.args[0] == "/etc/passwd"
        assert open_entry.result == fd
        assert open_entry.ok

    def test_denial_records_errno_and_propagates(self):
        kernel = build_kernel()
        trail = kernel.enable_audit()
        process = kernel.spawn(1000, 1000)  # no privileges at all
        with pytest.raises(SyscallError):
            kernel.sys_open(process.pid, "/etc/shadow", "r")
        (entry,) = trail.denials()
        assert entry.syscall == "open"
        assert entry.errno == 13  # EACCES
        assert "shadow" in entry.error
        assert entry.result is None

    def test_credentials_snapshot_is_at_call_time(self):
        """A setuid record carries the *pre-transition* credentials."""
        kernel = build_kernel()
        trail = kernel.enable_audit()
        process = kernel.spawn(
            1000, 1000,
            permitted=CapabilitySet.of(Capability.CAP_SETUID),
        )
        kernel.sys_priv_raise(
            process.pid, CapabilitySet.of(Capability.CAP_SETUID)
        )
        kernel.sys_setuid(process.pid, 0)
        setuid_entry = trail.records[-1]
        assert setuid_entry.syscall == "setuid"
        assert setuid_entry.uids == (1000, 1000, 1000)  # before the call
        assert "CapSetuid" in setuid_entry.caps_effective
        assert process.creds.uid_triple == (0, 0, 0)  # after the call

    def test_ring_buffer_evicts_oldest(self):
        kernel = build_kernel()
        trail = kernel.enable_audit(capacity=4)
        process = kernel.spawn(0, 0)
        for _ in range(10):
            kernel.sys_getuid(process.pid)
        assert len(trail) == 4
        assert trail.total == 10
        assert trail.dropped == 6
        assert [entry.seq for entry in trail.records] == [7, 8, 9, 10]

    def test_jsonl_export_round_trips(self):
        kernel = build_kernel()
        trail = kernel.enable_audit()
        process = kernel.spawn(0, 0)
        kernel.sys_getuid(process.pid)
        kernel.sys_fork(process.pid)
        lines = [json.loads(line) for line in trail.to_jsonl().splitlines()]
        assert [line["syscall"] for line in lines] == ["getuid", "fork"]
        assert lines[0]["uids"] == [0, 0, 0]
        assert lines[1]["result"].startswith("<process pid=")

    def test_clear(self):
        kernel = build_kernel()
        trail = kernel.enable_audit()
        process = kernel.spawn(0, 0)
        kernel.sys_getuid(process.pid)
        trail.clear()
        assert len(trail) == 0
        assert trail.total == 1  # sequence numbers keep counting


#: A program whose syscall order is fully scripted: raise, open-write-close
#: /tmp/scratch, lower, then exit via falling off main.
SCRIPTED_SOURCE = """
void main() {
    priv_raise(CAP_DAC_OVERRIDE);
    int fd = open("/tmp/scratch", "wc");
    write(fd, "hello");
    close(fd);
    priv_lower(CAP_DAC_OVERRIDE);
}
"""


class TestScriptedProgramAudit:
    def test_audit_matches_program_script(self):
        module = compile_source(SCRIPTED_SOURCE, "scripted")
        kernel = build_kernel()
        trail = kernel.enable_audit(SyscallAuditTrail(clock=ManualClock(tick=1.0)))
        process = kernel.spawn(
            1000, 1000,
            permitted=CapabilitySet.of(Capability.CAP_DAC_OVERRIDE),
        )
        vm = Interpreter(module, kernel, process)
        assert vm.run() == 0
        assert trail.syscall_names() == [
            "priv_raise", "open", "write", "close", "priv_lower",
        ]
        # Strictly increasing sequence and timestamps.
        seqs = [entry.seq for entry in trail.records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        times = [entry.time for entry in trail.records]
        assert times == sorted(times)
        # The open ran with CAP_DAC_OVERRIDE raised; the raise itself
        # was recorded with the pre-raise (empty) effective set.
        assert "CapDacOverride" in trail.records[1].caps_effective
        assert trail.records[0].caps_effective == "(empty)"

    def test_pipeline_audit_through_telemetry(self):
        from repro.core import PrivAnalyzer
        from repro.programs import spec_by_name
        from repro.telemetry import Telemetry

        telemetry = Telemetry.enabled(audit=True)
        PrivAnalyzer(telemetry=telemetry).analyze(spec_by_name("passwd"))
        names = telemetry.audit.syscall_names()
        assert names, "pipeline run recorded no syscalls"
        # The AutoPriv-inserted lockdown is the first syscall of the run.
        assert names[0] == "prctl_lockdown"
        # passwd's shadow update opens and closes /etc/shadow.
        assert "open" in names and "close" in names


class TestDroppedGauge:
    """Ring evictions surface as the ``kernel.audit.dropped`` gauge."""

    def test_gauge_tracks_ring_evictions(self):
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
        kernel = build_kernel()
        trail = kernel.enable_audit(
            SyscallAuditTrail(capacity=4, metrics=metrics)
        )
        process = kernel.spawn(0, 0)
        for _ in range(3):
            kernel.sys_getuid(process.pid)
        assert metrics.gauge("kernel.audit.dropped").value == 0
        for _ in range(7):
            kernel.sys_getuid(process.pid)
        assert trail.dropped == 6
        assert metrics.gauge("kernel.audit.dropped").value == 6
        assert metrics.snapshot()["kernel.audit.dropped"] == {
            "type": "gauge",
            "value": 6,
        }

    def test_without_registry_nothing_is_exported(self):
        kernel = build_kernel()
        trail = kernel.enable_audit(SyscallAuditTrail(capacity=2))
        process = kernel.spawn(0, 0)
        for _ in range(5):
            kernel.sys_getuid(process.pid)
        assert trail.dropped == 3  # the trail still counts

    def test_enabled_telemetry_wires_the_gauge(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.enabled(audit=True)
        assert telemetry.audit is not None
        kernel = build_kernel()
        kernel.enable_audit(telemetry.audit)
        process = kernel.spawn(0, 0)
        kernel.sys_getuid(process.pid)
        # No evictions yet, but the gauge exists and reads zero.
        assert telemetry.metrics.gauge("kernel.audit.dropped").value == 0
