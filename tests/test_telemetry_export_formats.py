"""Standard-format exporters: Perfetto trace-event JSON and Prometheus text.

Also pins the span-JSONL asymmetry: attributes that are not JSON
values are exported through ``default=repr``, so a round trip yields
their repr *string*, not the original object.
"""

import json
import re

import pytest

from repro.telemetry import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    metrics_to_prometheus,
    prometheus_name,
    render_progress,
    spans_from_jsonl,
    spans_to_jsonl,
    spans_to_trace_events,
    trace_event_json,
)

pytestmark = pytest.mark.telemetry


def traced_run():
    """A deterministic two-level trace: root at t=0, child at t=1."""
    tracer = Tracer(clock=ManualClock(start=0.0, tick=1.0))
    with tracer.span("pipeline.analyze", program="passwd"):
        with tracer.span("compile", insertions=3):
            pass
    return tracer


class TestSpanJsonlAsymmetry:
    def test_non_json_attribute_round_trips_as_repr_string(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        caps = frozenset({"CapSetuid"})
        with tracer.span("stage", caps=caps, count=2):
            pass
        restored = spans_from_jsonl(spans_to_jsonl(tracer))
        assert len(restored) == 1
        attributes = restored[0]["attributes"]
        # JSON-native values survive; everything else degrades to repr.
        assert attributes["count"] == 2
        assert attributes["caps"] == repr(caps)
        assert isinstance(attributes["caps"], str)

    def test_blank_lines_ignored(self):
        tracer = traced_run()
        text = spans_to_jsonl(tracer) + "\n\n"
        assert len(spans_from_jsonl(text)) == 2


class TestTraceEventExport:
    def test_events_carry_the_perfetto_schema_fields(self):
        events = spans_to_trace_events(traced_run())
        assert isinstance(events, list)
        for event in events:
            assert event["ph"] in ("M", "X", "C")
            assert "pid" in event and "tid" in event
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_timestamps_are_microseconds_from_the_injected_clock(self):
        events = spans_to_trace_events(traced_run())
        by_name = {event["name"]: event for event in events if event["ph"] == "X"}
        # Root opens at t=0 s; child at t=1 s and closes at t=2 s.
        assert by_name["pipeline.analyze"]["ts"] == 0.0
        assert by_name["compile"]["ts"] == 1_000_000.0
        assert by_name["compile"]["dur"] == 1_000_000.0
        # Parent wholly encloses the child, so the viewer nests them.
        root = by_name["pipeline.analyze"]
        child = by_name["compile"]
        assert root["ts"] <= child["ts"]
        assert root["ts"] + root["dur"] >= child["ts"] + child["dur"]

    def test_metadata_event_names_the_process(self):
        events = spans_to_trace_events(traced_run())
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "privanalyzer"

    def test_metric_counter_tracks(self):
        metrics = MetricsRegistry()
        metrics.counter("rosa.queries").inc(4)
        metrics.gauge("rosa.peak_frontier").set(17)
        metrics.histogram("rosa.query_seconds").observe(0.5)  # no track
        events = spans_to_trace_events(traced_run(), metrics)
        counters = {e["name"]: e for e in events if e["ph"] == "C"}
        assert counters["rosa.queries"]["args"]["value"] == 4
        assert counters["rosa.peak_frontier"]["args"]["value"] == 17
        assert "rosa.query_seconds" not in counters
        # Counter tracks are stamped at the trace's end.
        trace_end = max(e["ts"] + e["dur"] for e in events if e["ph"] == "X")
        assert counters["rosa.queries"]["ts"] == trace_end

    def test_json_document_is_an_array_and_survives_repr_attributes(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("stage", caps=frozenset({"CapChown"})):
            pass
        document = json.loads(trace_event_json(tracer))
        assert isinstance(document, list)
        stage = [e for e in document if e.get("name") == "stage"][0]
        assert isinstance(stage["args"]["caps"], str)


class TestWorkerTracks:
    """Spans merged from worker capsules render as per-worker tracks."""

    def fleet_tracer(self):
        tracer = Tracer(clock=ManualClock(start=0.0, tick=1.0))
        with tracer.span("rosa.run_queries"):
            pass
        for worker in ("worker:0", "worker:1"):
            with tracer.span("rosa.query", worker=worker, trace_id="k"):
                pass
        return tracer

    def test_worker_spans_get_their_own_tid(self):
        events = spans_to_trace_events(self.fleet_tracer())
        complete = {
            event["args"].get("worker", "main"): event
            for event in events
            if event["ph"] == "X"
        }
        # Main-session span stays on the base track; worker:N maps to
        # tid + 1 + N so track order matches worker ids.
        assert complete["main"]["tid"] == 1
        assert complete["worker:0"]["tid"] == 2
        assert complete["worker:1"]["tid"] == 3

    def test_thread_name_metadata_labels_every_track(self):
        events = spans_to_trace_events(self.fleet_tracer())
        names = {
            event["tid"]: event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {1: "main", 2: "worker:0", 3: "worker:1"}

    def test_no_worker_spans_means_no_thread_metadata(self):
        events = spans_to_trace_events(traced_run())
        assert not [e for e in events if e["name"] == "thread_name"]

    def test_unrecognized_worker_spelling_gets_a_free_track(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("rosa.query", worker="worker:0"):
            pass
        with tracer.span("rosa.query", worker="oddball"):
            pass
        events = spans_to_trace_events(tracer)
        tids = {
            event["args"]["worker"]: event["tid"]
            for event in events
            if event["ph"] == "X"
        }
        assert tids["worker:0"] == 2
        assert tids["oddball"] not in (1, tids["worker:0"])


#: One exposition line: sanitised name, optional labels, float value.
PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(?:[-+]?(?:\d+(?:\.\d+)?(?:[eE][-+]?\d+)?|\.\d+)|[-+]?Inf|NaN)$"
)

#: Same, allowing one label set between name and value.
PROM_LABELED_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})? "
    r"(?:[-+]?(?:\d+(?:\.\d+)?(?:[eE][-+]?\d+)?|\.\d+)|[-+]?Inf|NaN)$"
)


class TestPrometheusExport:
    def registry(self):
        metrics = MetricsRegistry()
        metrics.counter("rosa.cache.hits").inc(3)
        metrics.gauge("rosa.peak_frontier").set(12)
        histogram = metrics.histogram("rosa.query_seconds")
        histogram.observe(0.25)
        histogram.observe(0.75)
        return metrics

    def test_every_sample_line_is_valid_exposition_format(self):
        text = metrics_to_prometheus(self.registry())
        lines = [line for line in text.splitlines() if not line.startswith("#")]
        assert lines
        for line in lines:
            assert PROM_LINE.match(line), line

    def test_counter_gauge_and_summary_series(self):
        text = metrics_to_prometheus(self.registry())
        assert "# TYPE privanalyzer_rosa_cache_hits_total counter" in text
        assert "privanalyzer_rosa_cache_hits_total 3" in text
        assert "# TYPE privanalyzer_rosa_peak_frontier gauge" in text
        assert "# TYPE privanalyzer_rosa_query_seconds summary" in text
        assert "privanalyzer_rosa_query_seconds_count 2" in text
        assert "privanalyzer_rosa_query_seconds_sum 1.0" in text
        assert "privanalyzer_rosa_query_seconds_min 0.25" in text
        assert "privanalyzer_rosa_query_seconds_max 0.75" in text

    def test_empty_registry_renders_nothing(self):
        assert metrics_to_prometheus(MetricsRegistry()) == ""

    def test_name_sanitisation(self):
        assert prometheus_name("vm.syscall.open") == "privanalyzer_vm_syscall_open"
        assert prometheus_name("weird-name!", namespace="") == "weird_name_"
        assert prometheus_name("9lives", namespace="")[0] == "_"

    def labeled_registry(self):
        """A fleet-shaped registry: base totals plus per-worker variants."""
        metrics = MetricsRegistry()
        metrics.counter("rosa.worker.queries").inc(4)
        metrics.counter('rosa.worker.queries{worker="0"}').inc(3)
        metrics.counter('rosa.worker.queries{worker="1"}').inc(1)
        metrics.histogram('rosa.step{worker="0"}').observe(0.5)
        return metrics

    def test_labeled_series_keep_their_label_set_verbatim(self):
        text = metrics_to_prometheus(self.labeled_registry())
        assert 'privanalyzer_rosa_worker_queries_total{worker="0"} 3' in text
        assert 'privanalyzer_rosa_worker_queries_total{worker="1"} 1' in text
        assert "privanalyzer_rosa_worker_queries_total 4" in text

    def test_one_type_header_per_label_family(self):
        text = metrics_to_prometheus(self.labeled_registry())
        headers = [
            line
            for line in text.splitlines()
            if line.startswith("# TYPE privanalyzer_rosa_worker_queries_total ")
        ]
        assert len(headers) == 1

    def test_labeled_summary_suffixes_come_before_labels(self):
        text = metrics_to_prometheus(self.labeled_registry())
        assert 'privanalyzer_rosa_step_sum{worker="0"} 0.5' in text
        assert 'privanalyzer_rosa_step_count{worker="0"} 1' in text
        assert 'privanalyzer_rosa_step_min{worker="0"} 0.5' in text

    def test_labeled_lines_are_valid_exposition_format(self):
        text = metrics_to_prometheus(self.labeled_registry())
        lines = [line for line in text.splitlines() if not line.startswith("#")]
        assert lines
        for line in lines:
            assert PROM_LABELED_LINE.match(line), line


class TestProgressRendering:
    def test_line_shows_rate_depth_and_budget(self):
        from repro.rewriting import ProgressSample

        sample = ProgressSample(
            states_explored=2048, states_seen=3000, frontier=512, depth=7,
            elapsed=2.0, states_per_second=1024.0, budget_used=0.25,
        )
        line = render_progress(sample, label="rosa")
        assert line.startswith("rosa: ")
        assert "2,048 explored" in line
        assert "depth 7" in line
        assert "1,024 states/s" in line
        assert "budget 25%" in line
