"""Telemetry wired end-to-end: pipeline spans, metrics, CLI flags."""

import io
import json

import pytest

from repro.cli import main
from repro.core import PrivAnalyzer
from repro.programs import spec_by_name
from repro.telemetry import ManualClock, Telemetry, spans_from_jsonl

pytestmark = pytest.mark.telemetry


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def traced_ping():
    telemetry = Telemetry.enabled()
    analysis = PrivAnalyzer(telemetry=telemetry).analyze(spec_by_name("ping"))
    return telemetry, analysis


class TestPipelineSpans:
    def test_every_stage_is_covered(self, traced_ping):
        telemetry, analysis = traced_ping
        names = telemetry.tracer.names()
        for required in (
            "pipeline.analyze", "compile", "frontend.compile",
            "autopriv.transform", "chronopriv.instrument", "ir.verify",
            "chronopriv-run", "extract.syscalls", "rosa.check-phase",
            "rosa.query",
        ):
            assert required in names, f"missing span {required}"

    def test_one_rosa_query_span_per_phase_attack_pair(self, traced_ping):
        telemetry, analysis = traced_ping
        query_spans = [
            span for span in telemetry.tracer.finished if span.name == "rosa.query"
        ]
        expected = len(analysis.phases) * len(analysis.phases[0].verdicts)
        assert len(query_spans) == expected
        assert all("verdict" in span.attributes for span in query_spans)

    def test_phase_spans_nest_under_analyze(self, traced_ping):
        telemetry, _ = traced_ping
        spans = {span.span_id: span for span in telemetry.tracer.finished}
        root = next(
            span for span in spans.values() if span.name == "pipeline.analyze"
        )
        for span in spans.values():
            if span.name in ("compile", "chronopriv-run", "extract.syscalls"):
                assert span.parent_id == root.span_id

    def test_metrics_recorded(self, traced_ping):
        telemetry, analysis = traced_ping
        metrics = telemetry.metrics
        expected_queries = len(analysis.phases) * len(analysis.phases[0].verdicts)
        assert metrics.counter("rosa.queries").value == expected_queries
        assert metrics.counter("vm.instructions_executed").value > 0
        assert metrics.counter("vm.syscall_dispatches").value > 0
        assert metrics.histogram("rosa.query_seconds").count == expected_queries
        assert "autopriv.liveness_seconds" in metrics
        assert "autopriv.insertion_seconds" in metrics

    def test_disabled_telemetry_adds_no_spans(self):
        """Guard: the default pipeline records nothing."""
        analyzer = PrivAnalyzer()
        analyzer.analyze(spec_by_name("ping"))
        assert analyzer.telemetry.tracer.finished == []
        assert not analyzer.telemetry.active

    def test_rosa_report_carries_search_stats(self, traced_ping):
        _, analysis = traced_ping
        report = analysis.phases[0].verdicts[1]
        assert report.stats.peak_frontier >= 1
        assert "peak frontier" in report.cost_line()


class TestTransformTimings:
    def test_per_pass_timings_reported(self):
        from repro.autopriv import transform_module
        from repro.frontend import compile_source

        spec = spec_by_name("ping")
        module = compile_source(spec.source, spec.name)
        report = transform_module(
            module, spec.permitted, clock=ManualClock(tick=0.5)
        )
        assert set(report.timings) == {"liveness", "insertion"}
        assert report.timings["liveness"] > 0
        assert report.timings["insertion"] > 0


class TestCliObservability:
    def test_trace_out_writes_valid_jsonl(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        code, _ = run_cli(
            "analyze", "ping", "--trace", "--trace-out", str(trace_path)
        )
        assert code == 0
        spans = spans_from_jsonl(trace_path.read_text())
        names = {span["name"] for span in spans}
        assert {"compile", "autopriv.transform", "chronopriv-run", "rosa.query"} <= names
        for span in spans:
            assert span["end"] >= span["start"]

    def test_trace_without_out_prints_tree_to_stderr(self, capsys):
        code, _ = run_cli("analyze", "ping", "--trace")
        assert code == 0
        stderr = capsys.readouterr().err
        assert "pipeline.analyze" in stderr

    def test_profile_prints_stage_table(self, capsys):
        code, _ = run_cli("analyze", "ping", "--profile")
        assert code == 0
        stderr = capsys.readouterr().err
        assert "stage" in stderr and "total ms" in stderr
        assert "chronopriv-run" in stderr

    def test_audit_out_writes_syscall_jsonl(self, tmp_path):
        audit_path = tmp_path / "audit.jsonl"
        code, _ = run_cli("analyze", "ping", "--audit-out", str(audit_path))
        assert code == 0
        records = [
            json.loads(line) for line in audit_path.read_text().splitlines()
        ]
        assert records[0]["syscall"] == "prctl_lockdown"
        assert all("uids" in record for record in records)

    def test_rosa_prints_search_cost(self, capsys):
        code, out = run_cli("rosa", "examples/queries/figure2.rosa")
        assert code == 1  # vulnerable
        assert "search cost:" in out
        assert "states explored" in out and "peak frontier" in out

    def test_plain_analyze_has_no_trace_output(self, capsys, tmp_path):
        code, _ = run_cli("analyze", "ping")
        assert code == 0
        assert "pipeline.analyze" not in capsys.readouterr().err

    def test_verbose_logs_pipeline_progress(self, capsys):
        code, _ = run_cli("--verbose", "analyze", "ping")
        assert code == 0
        stderr = capsys.readouterr().err
        assert "repro.pipeline" in stderr

    def test_quiet_suppresses_info(self, capsys):
        code, _ = run_cli("--quiet", "analyze", "ping")
        assert code == 0
        assert "repro.pipeline" not in capsys.readouterr().err


class TestLibraryLogging:
    def test_repro_logger_has_null_handler(self):
        import logging

        logger = logging.getLogger("repro")
        assert any(
            isinstance(handler, logging.NullHandler) for handler in logger.handlers
        )
