"""The conformance testkit's seeded generators and case builders."""

import random

import pytest

from repro.caps import CapabilitySet
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.oskernel.setup import build_kernel
from repro.rewriting import Configuration
from repro.rosa.engine import QueryRequest
from repro.testkit import generators
from repro.testkit.shrink import case_size, drop_chunks, drop_one, greedy_shrink


def seeded(tag, index):
    return random.Random(f"0:{tag}:{index}")


class TestDeterminism:
    def test_same_seed_same_case_every_domain(self):
        for gen in (
            generators.gen_program_case,
            generators.gen_batch_case,
            generators.gen_query_case,
            generators.gen_config_case,
            generators.gen_trace_case,
        ):
            for index in range(5):
                a = gen(seeded(gen.__name__, index), 20)
                b = gen(seeded(gen.__name__, index), 20)
                assert a == b, f"{gen.__name__} is not seed-deterministic"

    def test_different_runs_differ(self):
        cases = {
            repr(generators.gen_program_case(seeded("p", index), 20))
            for index in range(10)
        }
        assert len(cases) > 1


class TestProgramGeneration:
    def test_generated_programs_compile_and_verify(self):
        for index in range(20):
            case = generators.gen_program_case(seeded("compile", index), 20)
            module = compile_source(generators.render_program(case), "generated")
            verify_module(module)

    def test_any_statement_subset_still_compiles(self):
        # The shrinker removes arbitrary statements; pre-declared
        # variables guarantee every subset stays a valid program.
        case = generators.gen_program_case(seeded("subset", 3), 20)
        rng = random.Random(42)
        for _ in range(5):
            subset_case = dict(case)
            subset_case["body"] = [
                stmt for stmt in case["body"] if rng.random() < 0.5
            ]
            compile_source(generators.render_program(subset_case), "subset")

    def test_spec_builder_round_trips_launch_config(self):
        case = generators.gen_program_case(seeded("spec", 0), 10)
        spec = generators.build_program_spec(case, name="x")
        assert spec.uid == case["uid"]
        assert spec.gid == case["gid"]
        assert spec.permitted == CapabilitySet(case["permitted"])


class TestQueryAndConfigGeneration:
    def test_query_case_builds_request_with_spec(self):
        for index in range(10):
            case = generators.gen_query_case(seeded("query", index), 20)
            request = generators.build_query_request(case)
            assert isinstance(request, QueryRequest)
            assert request.spec is not None
            assert request.spec.build().initial.key == request.query.initial.key

    def test_config_case_builds_valid_configuration(self):
        for index in range(10):
            case = generators.gen_config_case(seeded("config", index), 20)
            config = generators.build_configuration(case)
            assert isinstance(config, Configuration)
            assert config.key  # canonical key derivable
            assert len(list(config.objects("Process"))) == 1

    def test_trace_case_applies_to_fresh_kernel(self):
        for index in range(10):
            case = generators.gen_trace_case(seeded("trace", index), 20)
            kernel = build_kernel()
            process = kernel.spawn(
                case["uid"], case["gid"], permitted=CapabilitySet(case["caps"])
            )
            outcomes = generators.apply_trace(case, kernel, process.pid)
            assert len(outcomes) == len(case["steps"])


class TestShrinker:
    def test_drop_one_yields_every_single_removal(self):
        assert list(drop_one([1, 2, 3])) == [[1, 2], [1, 3], [2, 3]]

    def test_drop_chunks_tries_halves_first(self):
        variants = list(drop_chunks([1, 2, 3, 4, 5, 6]))
        assert variants[0] == [1, 2, 3]
        assert variants[1] == [4, 5, 6]

    def test_greedy_shrink_converges_to_minimal_failing_case(self):
        # Failure: the case contains the element 7 anywhere in "items".
        case = {"items": [1, 7, 3, 9, 2, 8]}

        def still_fails(candidate):
            return 7 in candidate["items"]

        def candidates(candidate):
            for index in range(len(candidate["items"])):
                yield {
                    "items": candidate["items"][:index]
                    + candidate["items"][index + 1 :]
                }

        shrunk, attempts = greedy_shrink(case, still_fails, candidates)
        assert shrunk == {"items": [7]}
        assert attempts > 0

    def test_greedy_shrink_respects_attempt_budget(self):
        case = {"items": list(range(50))}
        shrunk, attempts = greedy_shrink(
            case,
            lambda candidate: True,
            lambda candidate: (
                {"items": candidate["items"][:-1]} for _ in range(1)
            ),
            max_attempts=5,
        )
        assert attempts == 5
        assert case_size(shrunk) < case_size(case)

    def test_case_size_counts_nodes(self):
        assert case_size(1) == 1
        assert case_size([1, 2]) == 3
        assert case_size({"a": [1], "b": 2}) == 4


@pytest.mark.fuzz
def test_bulk_generation_never_fails_to_compile():
    for index in range(200):
        case = generators.gen_program_case(seeded("bulk", index), 40)
        compile_source(generators.render_program(case), "bulk")
