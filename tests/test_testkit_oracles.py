"""The differential oracles, metamorphic properties, and fuzz driver.

Two claims need proof: (1) on correct code every family passes its
campaign, and (2) each oracle actually *catches* the class of bug it
exists for — demonstrated by injecting artificial faults and watching
the failure shrink to a replayable repro file.
"""

import json
import random

import pytest

from repro.testkit.faults import FAULTS, install_fault
from repro.testkit.fuzz import (
    REPRO_SCHEMA_VERSION,
    load_repro,
    replay_repro,
    run_campaign,
)
from repro.testkit.oracles import ALL_FAMILIES, DEFAULT_FAMILIES, family
from repro.testkit.reference import ReferenceInterpreter

#: A handcrafted program whose mul result is large and observable —
#: deterministically trips the vm-mul-truncate fault.
MUL_CASE = {
    "vars": 1,
    "body": [["set", 0, ["bin", "*", ["lit", 64], ["lit", 3]]]],
    "permitted": [],
    "uid": 1000,
    "gid": 1000,
}


class TestFamiliesPassOnCorrectCode:
    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_small_campaign_passes(self, name, tmp_path):
        result = run_campaign(
            seed=0, runs=4, families=(name,), artifacts_dir=tmp_path
        )
        assert result.passed, [f.details for f in result.failures]
        assert result.executed == 4

    def test_default_families_are_the_differential_eight(self):
        assert DEFAULT_FAMILIES == (
            "cache",
            "pools",
            "vm",
            "compiled",
            "ledger",
            "reduction-parity",
            "profile",
            "store",
        )
        for name in DEFAULT_FAMILIES:
            assert name in ALL_FAMILIES

    def test_unknown_family_is_an_error(self):
        with pytest.raises(ValueError, match="unknown oracle family"):
            family("nonsense")


class TestFaultInjection:
    def test_vm_fault_caught_by_vm_oracle(self):
        oracle = family("vm")
        assert oracle.run(MUL_CASE).ok
        with install_fault("vm-mul-truncate"):
            result = oracle.run(MUL_CASE)
        assert result.failed
        assert "stdout" in result.details
        # The patch is fully undone on exit.
        assert oracle.run(MUL_CASE).ok

    def test_compiled_fault_caught_by_compiled_oracle(self):
        oracle = family("compiled")
        assert oracle.run(MUL_CASE).ok
        with install_fault("compiled-mul-truncate"):
            result = oracle.run(MUL_CASE)
        assert result.failed
        assert "compiled." in result.details
        assert oracle.run(MUL_CASE).ok

    def test_shared_table_fault_is_invisible_to_compiled_oracle(self):
        # Both production strategies consult the shared BINARY_OPS table,
        # so a bug there makes them agree (the vm family catches it
        # against the independent reference instead).
        oracle = family("compiled")
        with install_fault("vm-mul-truncate"):
            assert oracle.run(MUL_CASE).ok

    def test_cache_fault_caught_by_cache_oracle(self):
        oracle = family("cache")
        case = oracle.generate(random.Random("0:cache:0"), 20)
        assert oracle.run(case).ok
        with install_fault("cache-verdict-flip"):
            result = oracle.run(case)
        assert result.failed
        assert oracle.run(case).ok

    def test_profile_fault_caught_by_profile_oracle(self):
        oracle = family("profile")
        case = oracle.generate(random.Random("0:profile:0"), 20)
        assert oracle.run(case).ok
        with install_fault("profile-ledger-skew"):
            result = oracle.run(case)
        assert result.failed
        # A dropped phase shifts the count features first.
        assert "phase_count" in result.details or "cred_tuples" in result.details
        assert oracle.run(case).ok

    def test_profile_fault_is_invisible_to_ledger_oracle(self):
        # Both captures the ledger family self-diffs carry the same
        # skew, so only the live-vs-ledger comparison can see it.
        oracle = family("ledger")
        case = oracle.generate(random.Random("0:ledger:0"), 20)
        with install_fault("profile-ledger-skew"):
            assert oracle.run(case).ok

    def test_store_fault_caught_by_store_oracle(self):
        oracle = family("store")
        case = oracle.generate(random.Random("0:store:0"), 20)
        assert oracle.run(case).ok
        with install_fault("store-attestation-skew"):
            result = oracle.run(case)
        assert result.failed
        # Fail-closed means the fault never flips a verdict — it shows
        # up as the store refusing to serve anything it cannot re-attest.
        assert "no store hits" in result.details
        assert oracle.run(case).ok

    def test_store_fault_is_invisible_to_cache_oracle(self):
        # The in-memory query cache never touches the shared store, so
        # only the store family's warm-engine read path can see the skew.
        oracle = family("cache")
        case = oracle.generate(random.Random("0:cache:0"), 20)
        with install_fault("store-attestation-skew"):
            assert oracle.run(case).ok

    def test_unknown_fault_is_an_error(self):
        with pytest.raises(ValueError, match="unknown fault"):
            with install_fault("no-such-fault"):
                pass  # pragma: no cover

    def test_fault_registry_names(self):
        assert "vm-mul-truncate" in FAULTS
        assert "compiled-mul-truncate" in FAULTS
        assert "cache-verdict-flip" in FAULTS
        assert "profile-ledger-skew" in FAULTS
        assert "store-attestation-skew" in FAULTS


class TestCampaignShrinkAndReplay:
    def test_injected_campaign_shrinks_and_replays(self, tmp_path):
        # Seed 0, vm family: runs 3 deterministically trips the fault
        # (same coordinates the CLI acceptance command exercises).
        result = run_campaign(
            seed=0,
            runs=4,
            families=("vm",),
            artifacts_dir=tmp_path,
            inject="vm-mul-truncate",
        )
        assert not result.passed
        record = result.failures[0]
        assert record.family == "vm"
        assert record.shrunk_size <= record.original_size
        assert record.repro_path is not None

        data = load_repro(record.repro_path)
        assert data["inject"] == "vm-mul-truncate"
        assert data["schema"] == REPRO_SCHEMA_VERSION

        replay = replay_repro(record.repro_path)
        assert replay.failed, "repro file must replay to failure"

    def test_campaign_without_artifacts_dir_writes_nothing(self, tmp_path):
        result = run_campaign(
            seed=0,
            runs=4,
            families=("vm",),
            artifacts_dir=None,
            inject="vm-mul-truncate",
        )
        assert not result.passed
        assert result.failures[0].repro_path is None
        assert list(tmp_path.iterdir()) == []

    def test_oracle_crash_counts_as_failure(self, tmp_path, monkeypatch):
        oracle = family("vm")
        monkeypatch.setattr(
            type(oracle), "run", property(lambda self: 1 / 0), raising=False
        )
        # A crashing oracle must be reported, not propagate.
        result = run_campaign(
            seed=0, runs=1, families=("vm",), artifacts_dir=tmp_path
        )
        assert not result.passed
        assert "crashed" in result.failures[0].details


class TestReproFiles:
    def test_load_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="corrupt repro file"):
            load_repro(path)

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else", "schema": 1}))
        with pytest.raises(ValueError, match="not a privanalyzer fuzz repro"):
            load_repro(path)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {
                    "kind": "privanalyzer-fuzz-repro",
                    "schema": REPRO_SCHEMA_VERSION + 1,
                    "family": "vm",
                    "case": {},
                }
            )
        )
        with pytest.raises(ValueError, match="repro schema"):
            load_repro(path)

    def test_load_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "incomplete.json"
        path.write_text(
            json.dumps(
                {"kind": "privanalyzer-fuzz-repro", "schema": REPRO_SCHEMA_VERSION}
            )
        )
        with pytest.raises(ValueError, match="missing"):
            load_repro(path)


class TestReferenceInterpreterThroughPipeline:
    def test_whole_pipeline_agrees_under_reference_interpreter(self):
        """The interpreter_class hook swaps the evaluator pipeline-wide."""
        from repro.core.pipeline import PrivAnalyzer
        from repro.rewriting import SearchBudget
        from repro.testkit import generators
        from repro.vm import interpreter_class, set_interpreter_class
        from repro.vm.interpreter import Interpreter

        case = generators.gen_program_case(random.Random("pipe"), 15)
        spec = generators.build_program_spec(case, name="pipe")
        budget = SearchBudget(max_states=20_000, max_seconds=10.0)

        assert interpreter_class() is Interpreter
        stock = PrivAnalyzer(budget=budget).analyze(spec)
        previous = set_interpreter_class(ReferenceInterpreter)
        try:
            assert interpreter_class() is ReferenceInterpreter
            reference = PrivAnalyzer(budget=budget).analyze(spec)
        finally:
            set_interpreter_class(previous)
        assert interpreter_class() is Interpreter

        assert stock.exit_code == reference.exit_code
        assert stock.stdout == reference.stdout
        assert stock.chrono.total == reference.chrono.total
        for stock_phase, reference_phase in zip(stock.phases, reference.phases):
            for attack_id, report in stock_phase.verdicts.items():
                assert (
                    report.verdict
                    is reference_phase.verdicts[attack_id].verdict
                )


class TestFuzzCli:
    def test_cli_clean_campaign_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "fuzz", "--seed", "0", "--runs", "2",
                "--oracle", "vm", "--oracle", "ledger",
                "--artifacts", str(tmp_path),
            ]
        )
        assert code == 0
        assert "all passed" in capsys.readouterr().out

    def test_cli_injected_campaign_finds_shrinks_and_replays(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        code = main(
            [
                "fuzz", "--seed", "0", "--runs", "4", "--oracle", "vm",
                "--inject", "vm-mul-truncate", "--artifacts", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "--replay" in out
        repro_files = sorted(tmp_path.glob("vm-seed0-run*.json"))
        assert repro_files

        code = main(["fuzz", "--replay", str(repro_files[0])])
        assert code == 1
        assert "still failing" in capsys.readouterr().out

    def test_cli_rejects_unknown_oracle_and_fault(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown oracle"):
            main(["fuzz", "--oracle", "nonsense"])
        with pytest.raises(SystemExit, match="unknown fault"):
            main(["fuzz", "--inject", "nonsense"])
        with pytest.raises(SystemExit, match="runs must be positive"):
            main(["fuzz", "--runs", "0"])
        with pytest.raises(SystemExit, match="no such repro"):
            main(["fuzz", "--replay", str(tmp_path / "absent.json")])


@pytest.mark.fuzz
def test_long_campaign_all_families(tmp_path):
    """The nightly-style sweep: every family, a real run count."""
    result = run_campaign(
        seed=0, runs=25, families=ALL_FAMILIES, artifacts_dir=tmp_path
    )
    assert result.passed, [f.details for f in result.failures]
