"""The IR interpreter: evaluation semantics, signals, failure modes."""

import pytest

from repro.ir import (
    BOOL,
    ConstantInt,
    I64,
    I8,
    IRBuilder,
    IntType,
    Module,
    Phi,
    VOID,
)
from repro.oskernel import Kernel, signals
from repro.vm import Interpreter, ProgramExit, VMError


def make_vm(module, uid=1000, gid=1000, **kwargs):
    kernel = Kernel()
    process = kernel.spawn(uid, gid)
    return Interpreter(module, kernel, process, **kwargs), kernel, process


class TestEvaluation:
    def test_arithmetic_wraps_two_complement(self):
        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.add(function.arguments[0], 1))
        vm, _, _ = make_vm(module)
        assert vm.call_function(function, [2**63 - 1]) == -(2**63)

    def test_division_by_zero_is_vm_error(self):
        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.sdiv(1, function.arguments[0]))
        vm, _, _ = make_vm(module)
        with pytest.raises(VMError, match="by zero"):
            vm.call_function(function, [0])

    def test_select(self):
        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        builder = IRBuilder(function.add_block("entry"))
        cond = builder.icmp("sgt", function.arguments[0], 0)
        builder.ret(builder.select(cond, 1, -1))
        vm, _, _ = make_vm(module)
        assert vm.call_function(function, [5]) == 1
        assert vm.call_function(function, [-5]) == -1

    def test_phi_uses_predecessor(self):
        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        entry = function.add_block("entry")
        left = function.add_block("left")
        right = function.add_block("right")
        merge = function.add_block("merge")
        builder = IRBuilder(entry)
        cond = builder.icmp("eq", function.arguments[0], 0)
        builder.br(cond, left, right)
        builder.position_at_end(left)
        builder.jmp(merge)
        builder.position_at_end(right)
        builder.jmp(merge)
        builder.position_at_end(merge)
        phi = builder.phi(I64)
        phi.add_incoming(ConstantInt(I64, 10), left)
        phi.add_incoming(ConstantInt(I64, 20), right)
        builder.ret(phi)
        vm, _, _ = make_vm(module)
        assert vm.call_function(function, [0]) == 10
        assert vm.call_function(function, [1]) == 20

    def test_load_uninitialised_slot_reads_zero(self):
        module = Module("m")
        function = module.add_function("f", I64, [])
        builder = IRBuilder(function.add_block("entry"))
        slot = builder.alloca("x")
        builder.ret(builder.load(slot))
        vm, _, _ = make_vm(module)
        assert vm.call_function(function, []) == 0

    def test_globals_initialised(self):
        module = Module("m")
        var = module.add_global("g", 9)
        function = module.add_function("f", I64, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.load(var))
        vm, _, _ = make_vm(module)
        assert vm.call_function(function, []) == 9

    def test_unreachable_is_fatal(self):
        module = Module("m")
        function = module.add_function("f", VOID, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.unreachable()
        vm, _, _ = make_vm(module)
        with pytest.raises(VMError, match="unreachable"):
            vm.call_function(function, [])

    def test_load_through_non_pointer(self):
        module = Module("m")
        function = module.add_function("f", I64, [I64], ["x"])
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.load(function.arguments[0]))
        vm, _, _ = make_vm(module)
        with pytest.raises(VMError, match="non-pointer"):
            vm.call_function(function, [3])

    def test_missing_intrinsic(self):
        module = Module("m")
        ext = module.declare("no_such_intrinsic", I64, [])
        function = module.add_function("f", I64, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.call(ext, []))
        vm, _, _ = make_vm(module)
        with pytest.raises(VMError, match="no intrinsic"):
            vm.call_function(function, [])

    def test_call_depth_guard(self):
        module = Module("m")
        function = module.add_function("f", I64, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.call(function, []))
        vm, _, _ = make_vm(module)
        with pytest.raises(VMError, match="call depth"):
            vm.call_function(function, [])

    def test_instruction_budget(self):
        module = Module("m")
        function = module.add_function("main", VOID, [])
        entry = function.add_block("entry")
        loop = function.add_block("loop")
        builder = IRBuilder(entry)
        builder.jmp(loop)
        builder.position_at_end(loop)
        builder.jmp(loop)
        vm, _, _ = make_vm(module, max_instructions=1000)
        with pytest.raises(VMError, match="budget"):
            vm.run()

    def test_executed_instruction_counter(self):
        module = Module("m")
        function = module.add_function("main", I64, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.add(1, 2)
        builder.ret(0)
        vm, _, _ = make_vm(module)
        vm.run()
        assert vm.executed_instructions == 2


class TestRunAndExit:
    def test_exit_intrinsic(self):
        module = Module("m")
        ext = module.declare("exit", I64, [I64])
        function = module.add_function("main", VOID, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.call(ext, [7])
        builder.ret()
        vm, _, _ = make_vm(module)
        assert vm.run() == 7

    def test_fallthrough_returns_value(self):
        module = Module("m")
        function = module.add_function("main", I64, [])
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(5)
        vm, _, _ = make_vm(module)
        assert vm.run() == 5

    def test_void_main_returns_zero(self):
        module = Module("m")
        function = module.add_function("main", VOID, [])
        IRBuilder(function.add_block("entry")).ret()
        vm, _, _ = make_vm(module)
        assert vm.run() == 0


class TestSignalDispatch:
    def build_signal_module(self):
        """main registers a handler, then another process signals it."""
        from repro.frontend import compile_source

        source = """
        int handled;
        void on_term(int signum) { handled = signum; }
        void main() {
            handled = 0;
            signal(SIGTERM, &on_term);
            sleep(0);           // syscall boundary where delivery happens
            print_int(handled);
        }
        """
        return compile_source(source)

    def test_handler_runs_at_call_boundary(self):
        module = self.build_signal_module()
        kernel = Kernel()
        process = kernel.spawn(1000, 1000)
        vm = Interpreter(module, kernel, process)

        # Intercept the sleep intrinsic to deliver a signal mid-run.
        original_sleep = vm.intrinsics["sleep"]

        def sleepy(inner_vm, args):
            sender = kernel.spawn(1000, 1000)
            kernel.sys_kill(sender.pid, process.pid, signals.SIGTERM)
            return original_sleep(inner_vm, args)

        vm.register_intrinsic("sleep", sleepy)
        assert vm.run() == 0
        assert vm.stdout == [str(signals.SIGTERM)]

    def test_fatal_signal_terminates_run(self):
        from repro.frontend import compile_source

        source = """
        void main() {
            sleep(0);
            print_int(1);
        }
        """
        module = compile_source(source)
        kernel = Kernel()
        process = kernel.spawn(1000, 1000)
        vm = Interpreter(module, kernel, process)

        def killer(inner_vm, args):
            sender = kernel.spawn(1000, 1000)
            kernel.sys_kill(sender.pid, process.pid, signals.SIGKILL)
            return 0

        vm.register_intrinsic("sleep", killer)
        code = vm.run()
        assert code == 128 + signals.SIGKILL
        assert vm.stdout == []  # never reached the print
