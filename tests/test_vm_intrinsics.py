"""The intrinsics surface, exercised from PrivC programs."""

import pytest

from repro.caps import CapabilitySet
from repro.frontend import compile_source
from repro.oskernel.setup import build_kernel, UID_USER, GID_USER
from repro.vm import Interpreter


def run(source, caps=(), uid=UID_USER, gid=GID_USER, argv=(), stdin=(), env=None,
        refactored=False, setup=None):
    module = compile_source(source)
    kernel = build_kernel(refactored_ownership=refactored)
    process = kernel.spawn(uid, gid, permitted=CapabilitySet.of(*caps))
    kernel.sys_prctl_lockdown(process.pid)
    vm = Interpreter(module, kernel, process, argv=list(argv), stdin=list(stdin))
    if env:
        vm.env.update(env)
    if setup:
        setup(kernel, vm)
    code = vm.run()
    return code, vm.stdout, kernel, process


class TestErrnoConvention:
    def test_failed_syscall_returns_negative_errno(self):
        _, out, _, _ = run('void main() { print_int(open("/etc/shadow", "r")); }')
        assert out == ["-13"]  # -EACCES

    def test_missing_file_is_enoent(self):
        _, out, _, _ = run('void main() { print_int(open("/nope", "r")); }')
        assert out == ["-2"]


class TestGetspnam:
    def test_requires_privilege(self):
        source = """
        void main() {
            print_int(strlen(getspnam("user")));
            priv_raise(CAP_DAC_READ_SEARCH);
            print_str(getspnam("user"));
            priv_lower(CAP_DAC_READ_SEARCH);
        }
        """
        _, out, _, _ = run(source, caps=["CapDacReadSearch"])
        assert out == ["0", "$6$userpw"]

    def test_unknown_user_empty(self):
        source = """
        void main() {
            priv_raise(CAP_DAC_READ_SEARCH);
            print_int(strlen(getspnam("nobody")));
        }
        """
        _, out, _, _ = run(source, caps=["CapDacReadSearch"])
        assert out == ["0"]

    def test_crypt_matches_stored_hash(self):
        source = """
        void main() {
            priv_raise(CAP_DAC_READ_SEARCH);
            str stored = getspnam("other");
            priv_lower(CAP_DAC_READ_SEARCH);
            print_int(streq(stored, crypt("otherpw")));
            print_int(streq(stored, crypt("wrong")));
        }
        """
        _, out, _, _ = run(source, caps=["CapDacReadSearch"])
        assert out == ["1", "0"]


class TestUserDatabase:
    def test_getpwnam_and_back(self):
        source = """
        void main() {
            int uid = getpwnam_uid("other");
            print_int(uid);
            print_str(getpwuid_name(uid));
            print_int(getpw_gid(uid));
            print_int(getpwnam_uid("stranger"));
        }
        """
        _, out, _, _ = run(source)
        assert out == ["1001", "other", "1001", "-1"]


class TestShadowHelpers:
    def test_shadow_replace_hash(self):
        source = """
        void main() {
            str db = "a:1:x\\nb:2:y\\n";
            str updated = shadow_replace_hash(db, "b", "NEW");
            print_str(str_field(str_field(updated, 1, "\\n"), 1, ":"));
            print_str(str_field(str_field(updated, 0, "\\n"), 1, ":"));
        }
        """
        _, out, _, _ = run(source)
        assert out == ["NEW", "1"]


class TestStatFamily:
    def test_stat_fields(self):
        source = """
        void main() {
            print_int(stat_owner("/etc/shadow"));
            print_int(stat_group("/etc/shadow"));
            print_int(stat_mode("/etc/shadow"));
            print_int(stat_exists("/etc/shadow"));
            print_int(stat_exists("/etc/nothing"));
        }
        """
        _, out, _, _ = run(source)
        assert out == ["0", "42", str(0o640), "1", "0"]


class TestConversions:
    @pytest.mark.parametrize(
        "text,expected",
        [("42", 42), ("-7", -7), ("10x", 10), ("", 0), ("abc", 0), ("  5", 5)],
    )
    def test_str_to_int(self, text, expected):
        _, out, _, _ = run(
            'void main() { print_int(str_to_int(arg_str(0))); }', argv=[text]
        )
        assert out == [str(expected)]

    def test_int_to_str(self):
        _, out, _, _ = run('void main() { print_str(int_to_str(0 - 12)); }')
        assert out == ["-12"]


class TestNetworkingHelpers:
    def test_accept_and_recv_drain_queues(self):
        source = """
        void main() {
            int fd = socket();
            print_int(net_accept(fd));
            print_int(net_accept(fd));
            print_str(net_recv(fd));
            print_str(net_recv(fd));
            net_send(fd, "reply");
        }
        """
        _, out, _, kernel = run(
            source, env={"connections": [5], "incoming": ["hello"]}
        )
        assert out == ["5", "-1", "hello", ""]

    def test_net_send_records(self):
        module = compile_source('void main() { net_send(1, "data"); }')
        kernel = build_kernel()
        process = kernel.spawn(UID_USER, GID_USER)
        vm = Interpreter(module, kernel, process)
        vm.run()
        assert vm.env["sent"] == ["data"]


class TestPrivWrapperIntrinsics:
    def test_raise_of_unpermitted_cap_fails(self):
        source = "void main() { print_int(priv_raise(CAP_SYS_ADMIN)); }"
        _, out, _, _ = run(source, caps=["CapSetuid"])
        assert out == ["-1"]  # -EPERM

    def test_remove_then_raise_fails(self):
        source = """
        void main() {
            priv_remove(CAP_SETUID);
            print_int(priv_raise(CAP_SETUID));
        }
        """
        _, out, _, _ = run(source, caps=["CapSetuid"])
        assert out == ["-1"]

    def test_mask_composition(self):
        source = """
        void main() {
            print_int(priv_raise(CAP_SETUID | CAP_SETGID));
            print_int(setuid(0));
            print_int(setgid(0));
        }
        """
        _, out, _, process = run(source, caps=["CapSetuid", "CapSetgid"])
        assert out == ["0", "0", "0"]
        assert process.creds.uid_triple == (0, 0, 0)


class TestMiscIntrinsics:
    def test_getpid(self):
        _, out, _, process = run("void main() { print_int(getpid()); }")
        assert out == [str(process.pid)]

    def test_argc(self):
        _, out, _, _ = run("void main() { print_int(argc()); }", argv=["a", "b"])
        assert out == ["2"]

    def test_arg_str_out_of_range(self):
        _, out, _, _ = run('void main() { print_int(strlen(arg_str(9))); }')
        assert out == ["0"]

    def test_getpass_drains_stdin(self):
        source = """
        void main() {
            print_str(getpass("p1: "));
            print_str(getpass("p2: "));
            print_str(getpass("p3: "));
        }
        """
        _, out, _, _ = run(source, stdin=["one", "two"])
        assert out == ["one", "two", ""]
