"""Process-pool worker crashes must surface a diagnostic, never hang.

A worker that dies mid-search (OOM kill, SIGKILL) breaks the whole
pool; the engine converts the bare ``BrokenProcessPool`` into an error
naming the in-flight searches and how to retry them serially.
"""

import dataclasses
import random

import pytest

from repro.core.attacks import ALL_ATTACKS, Attack
from repro.core.multiprocess import analyze_multiprocess
from repro.rewriting import SearchBudget
from repro.rosa.engine import ParallelPolicy, QueryEngine, QueryRequest
from repro.testkit import generators
from repro.testkit.faults import CrashingSpec


def process_engine() -> QueryEngine:
    return QueryEngine(
        cache=None, parallel=ParallelPolicy(mode="process", max_workers=2)
    )


def seeded_requests(count: int) -> list:
    rng = random.Random("worker-crash")
    return [
        generators.build_query_request(generators.gen_query_case(rng, 10))
        for _ in range(count)
    ]


class TestEngineLevel:
    def test_killed_worker_surfaces_named_diagnostic(self):
        requests = seeded_requests(2)
        crashing = dataclasses.replace(requests[0], spec=CrashingSpec())
        with pytest.raises(RuntimeError) as failure:
            process_engine().run_queries([crashing] + requests[1:])
        message = str(failure.value)
        assert "worker crashed" in message
        assert "rerun with --jobs 1" in message
        # The diagnostic names the searches that were in flight.
        assert crashing.query.name in message

    def test_healthy_batch_still_completes_in_process_mode(self):
        requests = seeded_requests(2)
        reports = process_engine().run_queries(requests)
        assert len(reports) == len(requests)
        for report in reports:
            assert report.verdict is not None


class TestMultiprocessPipeline:
    def test_combined_exposure_reports_crash_instead_of_hanging(
        self, monkeypatch
    ):
        # Two privilege phases (before/after autopriv drops CapSetuid past
        # its last use; the loop supplies counted blocks in the second
        # phase) produce two distinct queries, so the batch actually
        # reaches the pool instead of deduplicating down to one
        # serially-run search.
        case = {
            "vars": 1,
            "body": [
                ["set", 0, ["lit", 1]],
                ["sys1", "setuid", 0],
                ["loop", 2, [["set", 0, ["bin", "+", ["var", 0], ["lit", 1]]]]],
            ],
            "permitted": ["CapSetuid"],
            "uid": 1000,
            "gid": 1000,
        }
        spec = generators.build_program_spec(case, name="crashy")
        analysis = analyze_multiprocess(spec)
        analysis.engine = process_engine()
        monkeypatch.setattr(
            Attack,
            "query_spec",
            lambda self, *args, **kwargs: CrashingSpec(),
        )
        with pytest.raises(RuntimeError, match="worker crashed"):
            analysis.combined_exposure(
                ALL_ATTACKS[0], budget=SearchBudget(max_states=1000)
            )
